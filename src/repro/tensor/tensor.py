"""First-class data tensors (paper Section 3).

A Graphene tensor has a name, a shape (congruent dims and strides, both
possibly hierarchical), an element type, and a memory-space label::

    %A : [(16,16):(16,1)] . fp16 . SH

Tensors are hierarchically decomposable into tiles: the element type of a
tiled tensor is another nested shape.  Tile sizes are one-dimensional
tensors themselves (``[2:1]`` groups two logically adjacent elements,
``[2:2]`` every other element), so both contiguous and non-contiguous
tiles are expressible (paper Figure 4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..ir.expr import Const, IntExpr, Var, as_expr
from ..layout import inttuple as it
from ..layout.algebra import LayoutAlgebraError, composition, logical_divide
from ..layout.layout import Layout, row_major
from ..layout.swizzle import IDENTITY_SWIZZLE, Swizzle
from ..pickling import PickleBySlots
from .dtypes import DType
from .memspace import GL, RF, SH, MemSpace

TileSize = Union[int, Layout, None]
Coord = Union[int, IntExpr]


class DimGuard(PickleBySlots):
    """Predication info for one logical dimension (paper Section 3.4).

    ``origin`` is the root-tensor coordinate of this view's first element
    along the dimension and ``extent`` the root dimension size; accesses
    must satisfy ``origin + i < extent``.
    """

    __slots__ = ("origin", "extent")

    def __init__(self, origin, extent):
        object.__setattr__(self, "origin", as_expr(origin))
        object.__setattr__(self, "extent", as_expr(extent))

    def __setattr__(self, *a):
        raise AttributeError("DimGuard is immutable")

    def shifted(self, delta) -> "DimGuard":
        return DimGuard(self.origin + delta, self.extent)

    def __repr__(self):
        return f"Guard({self.origin!r}+i<{self.extent!r})"


class Tile(PickleBySlots):
    """The element type of a tiled tensor: a nested shape."""

    __slots__ = ("layout", "element", "tile_sizes")

    def __init__(self, layout: Layout, element, tile_sizes: Tuple):
        object.__setattr__(self, "layout", layout)
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "tile_sizes", tile_sizes)

    def __setattr__(self, *a):
        raise AttributeError("Tile is immutable")

    def format(self) -> str:
        inner = self.element.format() if isinstance(self.element, Tile) \
            else repr(self.element)
        return f"{self.layout!r}.{inner}"

    def __repr__(self):
        return self.format()


class Tensor(PickleBySlots):
    """A named, laid-out, typed, memory-space-labelled tensor view."""

    __slots__ = (
        "name", "layout", "element", "mem", "offset", "swizzle", "buffer",
        "guards",
    )

    def __init__(
        self,
        name: str,
        layout: Union[Layout, Sequence, int],
        element: Union[DType, Tile],
        mem: MemSpace,
        *,
        offset: Coord = 0,
        swizzle: Swizzle = IDENTITY_SWIZZLE,
        buffer: Optional[str] = None,
        guards: Optional[Tuple[Optional[DimGuard], ...]] = None,
    ):
        if not isinstance(layout, Layout):
            layout = Layout(layout)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "layout", layout)
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "mem", mem)
        object.__setattr__(self, "offset", as_expr(offset))
        object.__setattr__(self, "swizzle", swizzle)
        object.__setattr__(self, "buffer", buffer if buffer is not None else name)
        object.__setattr__(self, "guards", guards)

    def __setattr__(self, *a):
        raise AttributeError("Tensor is immutable; use the view methods")

    # -- structure -----------------------------------------------------------
    @property
    def shape(self):
        return self.layout.shape

    @property
    def stride(self):
        return self.layout.stride

    @property
    def rank(self) -> int:
        if self.layout.shape == ():
            return 0
        return self.layout.rank

    @property
    def dtype(self) -> DType:
        element = self.element
        while isinstance(element, Tile):
            element = element.element
        return element

    def size(self):
        """Number of elements in this view (tiles count their contents)."""
        total = self.layout.size()
        element = self.element
        while isinstance(element, Tile):
            total = total * element.layout.size()
            element = element.element
        return total

    def is_tiled(self) -> bool:
        return isinstance(self.element, Tile)

    def is_scalar(self) -> bool:
        return self.rank == 0 and not self.is_tiled()

    def needs_predication(self) -> bool:
        return self.guards is not None and any(
            g is not None for g in self.guards
        )

    def dim(self, index: int):
        """The (possibly symbolic) size of top-level dimension ``index``."""
        return it.as_tuple(self.layout.shape)[index]

    # -- views ----------------------------------------------------------------
    def with_name(self, name: str) -> "Tensor":
        return self._replace(name=name)

    def with_swizzle(self, swizzle: Swizzle) -> "Tensor":
        return self._replace(swizzle=swizzle)

    def with_layout(self, layout: Layout) -> "Tensor":
        """Reinterpret with a different layout of equal size."""
        if isinstance(layout, Layout) and isinstance(layout.size(), int) \
                and isinstance(self.layout.size(), int) \
                and layout.size() != self.layout.size():
            raise ValueError(
                f"layout size {layout.size()} != tensor size "
                f"{self.layout.size()}"
            )
        return self._replace(layout=layout)

    def _replace(self, **kw) -> "Tensor":
        fields = {
            "name": self.name,
            "layout": self.layout,
            "element": self.element,
            "mem": self.mem,
            "offset": self.offset,
            "swizzle": self.swizzle,
            "buffer": self.buffer,
            "guards": self.guards,
        }
        fields.update(kw)
        return Tensor(
            fields["name"], fields["layout"], fields["element"], fields["mem"],
            offset=fields["offset"], swizzle=fields["swizzle"],
            buffer=fields["buffer"], guards=fields["guards"],
        )

    # -- tiling (paper Section 3.3) --------------------------------------------
    def tile(self, sizes: Sequence[TileSize], name: Optional[str] = None) -> "Tensor":
        """Tile each dimension with a 1-D tile-size tensor.

        Each entry of ``sizes`` is an ``int`` (``n`` adjacent elements, i.e.
        ``[n:1]``), a :class:`Layout` (possibly strided or hierarchical for
        non-contiguous tiles), or ``None`` (keep the whole dimension,
        written ``_`` in the paper).  Returns the tiled tensor: its shape
        arranges the tiles and its element type is the tile shape.
        """
        if self.is_tiled():
            raise ValueError(
                f"{self.name} is already tiled; index a tile before re-tiling"
            )
        if self.rank == 0:
            raise ValueError("cannot tile a scalar tensor")
        dims = it.as_tuple(self.layout.shape)
        if len(sizes) != len(dims):
            raise ValueError(
                f"expected {len(dims)} tile sizes for {self!r}, got {len(sizes)}"
            )
        inner_modes: List[Layout] = []
        outer_modes: List[Layout] = []
        new_guards: List[Optional[DimGuard]] = []
        tile_extents: List[Union[int, IntExpr]] = []
        for d, size in enumerate(sizes):
            mode = self.layout.mode(d)
            guard = self.guards[d] if self.guards is not None else None
            inner, outer, guard, extent = _divide_dim(mode, size, guard)
            inner_modes.append(inner)
            outer_modes.append(outer)
            new_guards.append(guard)
            tile_extents.append(extent)
        outer_layout = _modes_to_layout(outer_modes)
        inner_layout = _modes_to_layout(inner_modes)
        guards_tuple = tuple(new_guards) if any(
            g is not None for g in new_guards
        ) else None
        return self._replace(
            name=name if name is not None else self.name,
            layout=outer_layout,
            element=Tile(inner_layout, self.element, tuple(tile_extents)),
            guards=guards_tuple,
        )

    def __getitem__(self, coords) -> "Tensor":
        """Select a tile (tiled tensors) or an element view (scalar element).

        Coordinates may be concrete ints or symbolic index expressions
        (loop variables, thread indices).
        """
        if not isinstance(coords, tuple):
            coords = (coords,)
        if self.rank == 0:
            raise IndexError("cannot index a scalar tensor view")
        if len(coords) != self.rank:
            raise IndexError(
                f"{self!r} expects {self.rank} coordinates, got {len(coords)}"
            )
        coords = tuple(
            c if isinstance(c, tuple) else as_expr(c) for c in coords
        )
        delta = self.layout(coords)
        if self.is_tiled():
            tile = self.element
            guards = None
            if self.guards is not None:
                shifted = []
                for d, guard in enumerate(self.guards):
                    if guard is None:
                        shifted.append(None)
                    else:
                        shifted.append(
                            guard.shifted(coords[d] * tile.tile_sizes[d])
                        )
                guards = tuple(shifted)
            return self._replace(
                layout=tile.layout,
                element=tile.element,
                offset=self.offset + delta,
                guards=guards,
            )
        # Element selection on a scalar-element tensor: a [] view.
        guards = None
        if self.guards is not None:
            guards = tuple(
                g.shifted(coords[d]) if g is not None else None
                for d, g in enumerate(self.guards)
            )
        return self._replace(
            layout=Layout((), ()),
            offset=self.offset + delta,
            guards=guards,
        )

    def reshape(self, new_shape, order: str = "row") -> "Tensor":
        """Rearrange the top-level (tile) shape, keeping the elements.

        Used to arrange tiles multi-dimensionally, e.g. four 8-thread
        groups into a 2x2 arrangement (paper Figure 5c).  ``order``
        selects whether the existing linear order is consumed row-major
        (last dim fastest, the paper's convention) or col-major.
        """
        new_shape = new_shape if isinstance(new_shape, tuple) else (new_shape,)
        strides = (
            it.compact_row_major(new_shape)
            if order == "row"
            else it.compact_col_major(new_shape)
        )
        tiler = Layout(new_shape, strides)
        if tiler.size() != self.layout.size():
            raise ValueError(
                f"reshape to {new_shape} changes size "
                f"{self.layout.size()} -> {tiler.size()}"
            )
        reshaped = composition(self.layout, tiler)
        return self._replace(layout=reshaped)

    # -- accesses ---------------------------------------------------------------
    def access(self, coords: Sequence[Coord] = ()) -> Tuple[IntExpr, List[IntExpr]]:
        """The physical offset expression and predicates for an access.

        Returns ``(offset_expr, guards)`` where every guard is an
        expression of the form ``coordinate`` that must be ``< extent``;
        guards are returned as ``(lhs, rhs)``-style Sub-free expressions
        via :class:`DimGuard` pairs flattened to ``lhs < rhs`` tuples.
        """
        coords = tuple(
            c if isinstance(c, tuple) else as_expr(c) for c in coords
        )
        if coords:
            delta = self.layout(coords)
        else:
            delta = Const(0)
        preds: List = []
        if self.guards is not None:
            for d, guard in enumerate(self.guards):
                if guard is None:
                    continue
                coord = coords[d] if d < len(coords) else Const(0)
                preds.append((guard.origin + coord, guard.extent))
        return self.offset + delta, preds

    def physical_offset(self, coords: Sequence[int], env=None) -> int:
        """Numerically evaluate the physical offset of an access."""
        env = env or {}
        expr, _ = self.access(coords)
        return self.swizzle(expr.evaluate(env))

    # -- display ------------------------------------------------------------------
    def type_str(self) -> str:
        element = (
            self.element.format()
            if isinstance(self.element, Tile)
            else repr(self.element)
        )
        shape = "[]" if self.rank == 0 else repr(self.layout)
        sw = "" if self.swizzle.is_identity() else f"{self.swizzle!r}o"
        return f"{sw}{shape}.{element}.{self.mem!r}"

    def __repr__(self):
        return f"%{self.name}:{self.type_str()}"


def _divide_dim(
    mode: Layout,
    size: TileSize,
    guard: Optional[DimGuard],
) -> Tuple[Layout, Layout, Optional[DimGuard], Union[int, IntExpr]]:
    """Split one dimension into (tile, arrangement) modes.

    Returns ``(inner, outer, guard, tile_extent)``.
    """
    dim = mode.shape
    if size is None or size == "_":
        # Keep the whole dimension as the tile.
        return mode, Layout(1, 0), guard, it.product(dim)
    if isinstance(size, int):
        size = Layout(size, 1)
    if not isinstance(size, Layout):
        raise TypeError(f"tile size must be int, Layout or None, got {size!r}")
    tile_extent = size.size()
    concrete = mode.is_concrete() and isinstance(tile_extent, int)
    if concrete and isinstance(it.product(dim), int) \
            and it.product(dim) % tile_extent == 0:
        try:
            divided = logical_divide(mode, size)
            return divided.mode(0), divided.mode(1), guard, tile_extent
        except LayoutAlgebraError:
            pass
    # Partial or symbolic tiling: over-approximate and predicate
    # (paper Section 3.4).  Only unit-stride flat tile sizes make sense
    # for a ragged dimension.
    if not (it.is_int(size.shape) and size.stride == 1):
        raise LayoutAlgebraError(
            f"cannot tile dimension {mode!r} with non-contiguous tile "
            f"{size!r}: sizes do not divide evenly"
        )
    if not it.is_int(dim):
        raise LayoutAlgebraError(
            f"cannot partially tile hierarchical dimension {mode!r}"
        )
    extent = dim
    stride = mode.stride
    inner = Layout(tile_extent, stride)
    outer_count = (as_expr(extent) + (tile_extent - 1)) // tile_extent
    if isinstance(extent, int):
        outer_count = Const((extent + tile_extent - 1) // tile_extent)
    outer = Layout(
        outer_count.value if isinstance(outer_count, Const) else outer_count,
        stride * tile_extent if isinstance(stride, int) else as_expr(stride) * tile_extent,
    )
    origin = guard.origin if guard is not None else Const(0)
    root_extent = guard.extent if guard is not None else as_expr(extent)
    return inner, outer, DimGuard(origin, root_extent), tile_extent


def _modes_to_layout(modes: Sequence[Layout]) -> Layout:
    if len(modes) == 1:
        return modes[0]
    return Layout(
        tuple(m.shape for m in modes), tuple(m.stride for m in modes)
    )


def tensor(
    name: str,
    shape,
    dtype: DType,
    mem: MemSpace = GL,
    stride=None,
    **kw,
) -> Tensor:
    """Convenience constructor: row-major by default, like the paper.

    ``tensor("A", (1024, 1024), FP16, GL)`` builds
    ``%A:[(1024,1024):(1024,1)].fp16.GL``.
    """
    if stride is None:
        layout = row_major(tuple(shape) if not it.is_int(shape) else shape)
    else:
        layout = Layout(shape, stride)
    return Tensor(name, layout, dtype, mem, **kw)
