"""GPU memory spaces (paper Figure 2: GL / SH / RF).

Global memory is off-chip and visible to the whole grid, shared memory is
on-chip and visible to one thread-block, and registers are thread-local.
The labels drive both atomic-spec matching (a ``Move`` from GL to RF is a
load) and the functional simulator's buffer scoping.
"""

from __future__ import annotations


class MemSpace:
    """One of the three CUDA memory regions Graphene models."""

    __slots__ = ("label", "description", "scope")

    def __init__(self, label: str, description: str, scope: str):
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "description", description)
        object.__setattr__(self, "scope", scope)

    def __setattr__(self, *a):
        raise AttributeError("MemSpace is immutable")

    def __reduce__(self):
        # Memory spaces intern by label; unpickling restores GL/SH/RF.
        return (memspace, (self.label,))

    def __eq__(self, other):
        return isinstance(other, MemSpace) and other.label == self.label

    def __hash__(self):
        return hash(("MemSpace", self.label))

    def __repr__(self):
        return self.label


#: Off-chip global memory, shared by the whole grid.
GL = MemSpace("GL", "global memory", "grid")
#: On-chip shared memory, shared by the threads of one block.
SH = MemSpace("SH", "shared memory", "block")
#: Registers, private to a single thread.
RF = MemSpace("RF", "registers", "thread")

_BY_LABEL = {m.label: m for m in (GL, SH, RF)}


def memspace(label: str) -> MemSpace:
    """Look up a memory space by label (``"GL"``, ``"SH"``, ``"RF"``)."""
    try:
        return _BY_LABEL[label]
    except KeyError:
        raise KeyError(f"unknown memory space {label!r}") from None
