"""GPU architecture descriptions and the architecture registry.

An :class:`Architecture` bundles the atomic-spec table used for matching,
simulation and code generation with the hardware parameters the
analytical performance model needs (peak throughputs, memory bandwidth,
launch overhead) and a set of *capability tokens* (``"tma"``,
``"wgmma"``, ``"fp8"``, ``"sparse_24"``, ...).

Architectures enter the system through :func:`register`; consumers look
them up with :func:`architecture` and select features by querying
:meth:`Architecture.supports` — never by comparing architecture names.
Adding a new generation is a registration, not a grep: construct the
``Architecture`` with its atomic table and capabilities and register it
under a key (plus any aliases such as ``"sm90"``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..specs.atomic import AtomicSpec


class Architecture:
    """One GPU target: atomic specs, capabilities, perf-model parameters."""

    __slots__ = (
        "name", "key", "sm", "atomics", "capabilities",
        "num_sms", "tensor_fp16_tflops", "fp32_tflops", "fp16_tflops",
        "dram_gbps", "smem_bytes_per_sm", "smem_gbps",
        "launch_overhead_us", "max_threads_per_sm",
    )

    def __init__(
        self,
        name: str,
        sm: int,
        atomics: Sequence[AtomicSpec],
        *,
        capabilities: Iterable[str] = (),
        num_sms: int,
        tensor_fp16_tflops: float,
        fp32_tflops: float,
        fp16_tflops: float,
        dram_gbps: float,
        smem_bytes_per_sm: int,
        smem_gbps: float,
        launch_overhead_us: float = 5.0,
        max_threads_per_sm: int = 2048,
    ):
        object.__setattr__(self, "name", name)
        # Canonical registry key ("ampere", "hopper", ...); assigned by
        # :func:`register`, defaults to the SM spelling until then.
        object.__setattr__(self, "key", f"sm{sm}")
        object.__setattr__(self, "sm", sm)
        object.__setattr__(self, "atomics", tuple(atomics))
        object.__setattr__(self, "capabilities", frozenset(capabilities))
        object.__setattr__(self, "num_sms", num_sms)
        object.__setattr__(self, "tensor_fp16_tflops", tensor_fp16_tflops)
        object.__setattr__(self, "fp32_tflops", fp32_tflops)
        object.__setattr__(self, "fp16_tflops", fp16_tflops)
        object.__setattr__(self, "dram_gbps", dram_gbps)
        object.__setattr__(self, "smem_bytes_per_sm", smem_bytes_per_sm)
        object.__setattr__(self, "smem_gbps", smem_gbps)
        object.__setattr__(self, "launch_overhead_us", launch_overhead_us)
        object.__setattr__(self, "max_threads_per_sm", max_threads_per_sm)

    def __setattr__(self, *a):
        raise AttributeError("Architecture is immutable")

    def __reduce__(self):
        # Architectures pickle by name and unpickle to the registry
        # singleton, so atomic executor functions never serialize.
        return (architecture, (self.name,))

    def supports(self, feature: str) -> bool:
        """Capability query: a declared token or an atomic-spec name.

        Feature selection throughout the codebase goes through this —
        ``arch.supports("tma")``, ``arch.supports("wgmma")`` — instead
        of matching architecture names.
        """
        if feature in self.capabilities:
            return True
        return any(a.name == feature for a in self.atomics)

    def atomic(self, name: str) -> AtomicSpec:
        for a in self.atomics:
            if a.name == name:
                return a
        raise KeyError(f"{self.name} has no atomic spec {name!r}")

    def __repr__(self):
        return f"Architecture({self.name}, sm{self.sm})"


#: The architecture registry: key -> Architecture, plus alias -> key.
_REGISTRY: Dict[str, Architecture] = {}
_ALIASES: Dict[str, str] = {}


def register(
    arch: Architecture,
    key: Optional[str] = None,
    aliases: Sequence[str] = (),
) -> Architecture:
    """Register an architecture under ``key`` (default: ``"sm<N>"``).

    ``aliases`` add extra lookup spellings (e.g. ``"sm86"`` for
    ``"ampere"``).  Re-registering the identical object is a no-op;
    claiming an existing key with a different object is an error.
    """
    if not isinstance(arch, Architecture):
        raise TypeError(f"register expects an Architecture, got {arch!r}")
    key = (key or f"sm{arch.sm}").lower()
    existing = _REGISTRY.get(key)
    if existing is not None and existing is not arch:
        raise ValueError(
            f"architecture key {key!r} is already registered to {existing!r}"
        )
    _REGISTRY[key] = arch
    object.__setattr__(arch, "key", key)
    for alias in aliases:
        alias = alias.lower()
        taken = _ALIASES.get(alias)
        if taken is not None and taken != key:
            raise ValueError(
                f"architecture alias {alias!r} already points to {taken!r}"
            )
        _ALIASES[alias] = key
    return arch


def registered() -> Tuple[str, ...]:
    """The registered architecture keys, sorted."""
    return tuple(sorted(_REGISTRY))


def architecture(name) -> Architecture:
    """Look up a registered architecture.

    Accepts the registry key (``"ampere"``), an alias (``"sm86"``), the
    descriptive ``Architecture.name`` (``"RTX A6000"`` — pickling
    reduces by it), or an ``Architecture`` instance (returned as-is, so
    call sites can normalize either spelling).
    """
    if isinstance(name, Architecture):
        return name
    key = str(name).lower()
    found = _REGISTRY.get(key) or _REGISTRY.get(_ALIASES.get(key, ""))
    if found is None:
        for arch in _REGISTRY.values():
            if arch.name == name:
                return arch
        known = sorted(set(_REGISTRY) | set(_ALIASES))
        raise KeyError(f"unknown architecture {name!r}; known: {known}")
    return found
