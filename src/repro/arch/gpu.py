"""GPU architecture descriptions.

An :class:`Architecture` bundles the atomic-spec table used for matching,
simulation and code generation with the hardware parameters the
analytical performance model needs (peak throughputs, memory bandwidth,
launch overhead).  The two paper targets are SM70 (Volta V100) and SM86
(Ampere RTX A6000).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..specs.atomic import AtomicSpec


class Architecture:
    """One GPU target: atomic specs + performance-model parameters."""

    __slots__ = (
        "name", "sm", "atomics",
        "num_sms", "tensor_fp16_tflops", "fp32_tflops", "fp16_tflops",
        "dram_gbps", "smem_bytes_per_sm", "smem_gbps",
        "launch_overhead_us", "max_threads_per_sm",
    )

    def __init__(
        self,
        name: str,
        sm: int,
        atomics: Sequence[AtomicSpec],
        *,
        num_sms: int,
        tensor_fp16_tflops: float,
        fp32_tflops: float,
        fp16_tflops: float,
        dram_gbps: float,
        smem_bytes_per_sm: int,
        smem_gbps: float,
        launch_overhead_us: float = 5.0,
        max_threads_per_sm: int = 2048,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "sm", sm)
        object.__setattr__(self, "atomics", tuple(atomics))
        object.__setattr__(self, "num_sms", num_sms)
        object.__setattr__(self, "tensor_fp16_tflops", tensor_fp16_tflops)
        object.__setattr__(self, "fp32_tflops", fp32_tflops)
        object.__setattr__(self, "fp16_tflops", fp16_tflops)
        object.__setattr__(self, "dram_gbps", dram_gbps)
        object.__setattr__(self, "smem_bytes_per_sm", smem_bytes_per_sm)
        object.__setattr__(self, "smem_gbps", smem_gbps)
        object.__setattr__(self, "launch_overhead_us", launch_overhead_us)
        object.__setattr__(self, "max_threads_per_sm", max_threads_per_sm)

    def __setattr__(self, *a):
        raise AttributeError("Architecture is immutable")

    def __reduce__(self):
        # Architectures pickle by name and unpickle to the registry
        # singleton, so atomic executor functions never serialize.
        return (architecture, (self.name,))

    def supports(self, atomic_name: str) -> bool:
        return any(a.name == atomic_name for a in self.atomics)

    def atomic(self, name: str) -> AtomicSpec:
        for a in self.atomics:
            if a.name == name:
                return a
        raise KeyError(f"{self.name} has no atomic spec {name!r}")

    def __repr__(self):
        return f"Architecture({self.name}, sm{self.sm})"


def architecture(name: str) -> Architecture:
    """Look up a registered architecture.

    Accepts both the registry key (``"ampere"``) and the descriptive
    ``Architecture.name`` (``"RTX A6000"``) — pickling reduces by the
    latter.
    """
    from . import ARCHITECTURES  # deferred: ampere/volta import this module

    found = ARCHITECTURES.get(name)
    if found is None:
        for arch in ARCHITECTURES.values():
            if arch.name == name:
                return arch
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(ARCHITECTURES)}"
        )
    return found
