"""Register-fragment mappings of GPU tensor instructions.

Tensor Core mma and ldmatrix instructions prescribe exactly which logical
matrix element each lane holds in which register (paper Figures 1a/1b and
Section 4).  These mappings are the ground truth the functional simulator
executes; a kernel whose decomposition disagrees with them produces wrong
numerics, mirroring real hardware.

Lane indices ``li`` below are positions *within the cooperating group*
(0..31 for warp-wide instructions, 0..7 within a Volta quad-pair), and
register indices ``r`` enumerate the lane's fragment tensor in
(tile-major, colexicographic) order.
"""

from __future__ import annotations

from typing import Tuple


# -- ldmatrix (m8n8.b16) -------------------------------------------------------
def ldmatrix_dst_coords(li: int, q: int, j: int) -> Tuple[int, int]:
    """Element of 8x8 matrix ``q`` that lane ``li`` receives in value ``j``.

    Each lane receives two adjacent 16-bit values per 8x8 matrix:
    row ``li/4``, columns ``2*(li%4)`` and ``+1`` (paper Figure 1b).
    """
    return li // 4, 2 * (li % 4) + j


def ldmatrix_src_lane(q: int, row: int) -> int:
    """The lane that must supply the address of ``row`` of matrix ``q``
    (paper Figure 1a): lanes 8q..8q+7 point at rows 0..7 of matrix q."""
    return 8 * q + row


# -- Ampere mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32 -------------------
# D(16x8) = A(16x16) @ B(16x8) + C(16x8); 32 lanes.
def mma_16816_a_coord(li: int, r: int) -> Tuple[int, int]:
    """A-fragment: 8 fp16 per lane, laid out as [2,2].[1,2]."""
    group, tig = li // 4, li % 4
    q, j = r // 2, r % 2
    row = group + 8 * (q % 2)
    col = 2 * tig + j + 8 * (q // 2)
    return row, col


def mma_16816_b_coord(li: int, r: int) -> Tuple[int, int]:
    """B-fragment: 4 fp16 per lane, laid out as [2,1].[2,1]; returns (k, n)."""
    group, tig = li // 4, li % 4
    q, j = r // 2, r % 2
    return 2 * tig + j + 8 * q, group


def mma_16816_c_coord(li: int, r: int) -> Tuple[int, int]:
    """C/D-fragment: 4 fp32 per lane, laid out as [2,1].[1,2]; (m, n)."""
    group, tig = li // 4, li % 4
    q, j = r // 2, r % 2
    return group + 8 * q, 2 * tig + j


MMA_16816_SHAPE = (16, 8, 16)  # (m, n, k)


# -- Volta mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32 ----------------------
# Executed by a quad-pair (8 lanes); D(8x8) = A(8x4) @ B(4x8) + C(8x8).
#
# NOTE: real Volta hardware uses a more intricate lane->element map; the
# mapping below preserves the fragment shapes of paper Table 2
# ([4,1]/[1,4] fp16 in, [2,4] fp32 out) and the quad-pair execution
# group, and is self-consistent between the instruction and any
# decomposition targeting it (see DESIGN.md substitutions).
def mma_884_a_coord(li: int, r: int) -> Tuple[int, int]:
    """A-fragment: lane ``li`` holds the 4 k-values of row ``li``; (m, k)."""
    return li, r


def mma_884_b_coord(li: int, r: int) -> Tuple[int, int]:
    """B-fragment: lane ``li`` holds the 4 k-values of column ``li``; (k, n)."""
    return r, li


def mma_884_c_coord(li: int, r: int) -> Tuple[int, int]:
    """C/D-fragment: [2,4] fp32 per lane; (m, n)."""
    quad, pos = li // 4, li % 4
    j, col = r % 2, r // 2
    return 2 * pos + j, 4 * quad + col


MMA_884_SHAPE = (8, 8, 4)  # (m, n, k)


# -- Hopper wgmma.mma_async.m64nNk{16,32} ---------------------------------------
# Executed by a full warpgroup (128 lanes / 4 warps); A and B stream from
# shared memory, only the fp32 accumulator lives in registers.  Warp ``w``
# owns rows ``16w..16w+15``; within a warp the 16xN accumulator repeats
# the m16n8 C-fragment pattern across n-blocks of 8 columns, so each lane
# holds ``N/2`` fp32 registers.
def wgmma_c_coord(li: int, r: int) -> Tuple[int, int]:
    """C/D-fragment of ``wgmma.m64nN``: lane ``li`` (0..127), register
    ``r`` (0..N/2-1); returns (m, n)."""
    warp, lane = li // 32, li % 32
    group, tig = lane // 4, lane % 4
    nblock, rr = r // 4, r % 4
    q, j = rr // 2, rr % 2
    return 16 * warp + group + 8 * q, 8 * nblock + 2 * tig + j
