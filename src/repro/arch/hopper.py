"""SM90 (Hopper H100) architecture description.

Hopper widens the collective scope of the tensor pipeline from a warp to
a *warpgroup* (128 threads / 4 warps): ``wgmma.mma_async`` instructions
multiply whole 64xN tiles with A and B streamed straight from shared
memory, and the Tensor Memory Accelerator (TMA) moves whole tiles
global-to-shared with a single descriptor-driven ``cp.async.bulk.tensor``
instruction that bypasses the register file.  Hopper also introduces the
OCP fp8 operand formats (e4m3/e5m2, 2x fp16 tensor throughput) and
2:4 structured sparsity with metadata-indexed operands.

Everything Ampere matches still matches here — the Hopper table simply
prepends the warpgroup-scope atomics, so decompositions that stop at
warp scope lower exactly as they would on Ampere.
"""

from __future__ import annotations

from ..specs.atomic import AtomicSpec, OperandPattern as Op
from ..tensor.dtypes import FP8E4M3, FP8E5M2, FP16, FP32, INT32
from ..tensor.memspace import GL, RF, SH
from . import instructions as X
from .ampere import _ampere_atomics
from .gpu import Architecture, register

WGMMA_F16 = "wgmma.mma_async.sync.aligned.m64n64k16.f32.f16.f16"
WGMMA_E4M3 = "wgmma.mma_async.sync.aligned.m64n64k32.f32.e4m3.e4m3"
TMA_G2S = "cp.async.bulk.tensor.2d.shared.global"


def _is_tma(spec) -> bool:
    return spec.label.startswith("tma")


def _is_sparse24(spec) -> bool:
    return spec.label.startswith("sparse24")


def _hopper_atomics():
    table = []
    # Warpgroup mma: A/B are shared-memory tiles (descriptor operands on
    # hardware); only the fp32 accumulator is a register fragment, laid
    # out per lane as [4, 8] (4 values per 8-column n-block, 8 n-blocks).
    table.append(
        AtomicSpec(
            "wgmma.64.64.16.f16", "MatMul", WGMMA_F16, 128,
            [
                Op(mem=SH, dtype=FP16, shape=(64, 16)),
                Op(mem=SH, dtype=FP16, shape=(16, 64)),
            ],
            [Op(mem=RF, dtype=FP32, shape=(4, 8))],
            execute=X.make_exec_wgmma(WGMMA_F16),
        )
    )
    table.append(
        AtomicSpec(
            "wgmma.64.64.32.e4m3", "MatMul", WGMMA_E4M3, 128,
            [
                Op(mem=SH, dtype=FP8E4M3, shape=(64, 32)),
                Op(mem=SH, dtype=FP8E4M3, shape=(32, 64)),
            ],
            [Op(mem=RF, dtype=FP32, shape=(4, 8))],
            execute=X.make_exec_wgmma(WGMMA_E4M3),
        )
    )
    # TMA bulk tensor copies: one instruction per whole 2-D tile,
    # global-to-shared, register-file bypass, asynchronous (drained at
    # the next barrier).  Kernels opt in by labelling the Move "tma...".
    for dtype in (FP16, FP8E4M3, FP8E5M2, INT32):
        table.append(
            AtomicSpec(
                f"tma.g2s.{dtype.name}", "Move", TMA_G2S, 128,
                [Op(mem=GL, dtype=dtype)],
                [Op(mem=SH, dtype=dtype)],
                predicate=_is_tma,
                execute=X.exec_tma_bulk_g2s,
            )
        )
    # 2:4 structured sparsity: expand a compressed (m, k/2) operand tile
    # plus its metadata to the dense (m, k) tile the wgmma consumes.
    table.append(
        AtomicSpec(
            "sparse24.decompress", "Spec",
            "sparse24.decompress [smem expand]", 128,
            [Op(mem=SH, dtype=FP16), Op(mem=SH, dtype=INT32)],
            [Op(mem=SH, dtype=FP16)],
            predicate=_is_sparse24,
            execute=X.exec_sparse24_decompress,
        )
    )
    table.extend(_ampere_atomics())
    return table


#: NVIDIA H100 (SXM5): 132 SMs, 3350 GB/s HBM3, ~989 TFLOP/s dense fp16
#: Tensor Cores (fp8 doubles that), 67 TFLOP/s fp32 FMA.
HOPPER = Architecture(
    "H100 SXM", 90, _hopper_atomics(),
    capabilities=(
        "tensor_core", "ldmatrix", "cp_async",
        "tma", "wgmma", "fp8", "sparse_24",
    ),
    num_sms=132,
    tensor_fp16_tflops=989.5,
    fp32_tflops=66.9,
    fp16_tflops=133.8,
    dram_gbps=3350.0,
    smem_bytes_per_sm=228 * 1024,
    smem_gbps=33_000.0,
    launch_overhead_us=5.0,
)

register(HOPPER, "hopper", aliases=("sm90",))
