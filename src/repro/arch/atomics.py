"""The atomic-specification tables (paper Table 2).

``common_atomics`` lists the instruction set shared by every modelled
architecture; :mod:`repro.arch.volta` and :mod:`repro.arch.ampere` extend
it with their generation-specific Tensor Core and data-movement
instructions.  Tables are ordered most-specific-first: instruction
selection picks the first structural match.
"""

from __future__ import annotations

from typing import List

from ..specs.atomic import AtomicSpec, OperandPattern as Op
from ..tensor.dtypes import FP16, FP32
from ..tensor.memspace import GL, RF, SH
from . import instructions as X


def _move(name, instruction, width, src, dst, execute=X.exec_thread_move):
    return AtomicSpec(
        name, "Move", instruction, width, [src], [dst], execute=execute,
    )


def vector_moves() -> List[AtomicSpec]:
    """Vectorized and scalar per-thread loads and stores."""
    table: List[AtomicSpec] = []
    routes = [
        (GL, RF, "ld.global"),
        (RF, GL, "st.global"),
        (SH, RF, "ld.shared"),
        (RF, SH, "st.shared"),
        (SH, GL, "ld.shared + st.global"),
        (RF, RF, "mov"),
    ]
    widths = [
        (FP16, 8, "v4.b32"),
        (FP32, 4, "v4.b32"),
        (FP16, 4, "v2.b32"),
        (FP32, 2, "v2.b32"),
        (FP16, 2, "b32"),
    ]
    for src_mem, dst_mem, base in routes:
        for dtype, n, suffix in widths:
            table.append(
                _move(
                    f"{base}.{suffix}.{dtype.name}x{n}",
                    f"{base}.{suffix}",
                    1,
                    Op(mem=src_mem, dtype=dtype, shape=(n,), contiguous=True),
                    Op(mem=dst_mem, dtype=dtype, shape=(n,)),
                )
            )
        # Scalar fallbacks (any dtype).
        table.append(
            _move(
                f"{base}.scalar",
                f"{base}.b32",
                1,
                Op(mem=src_mem, shape=()),
                Op(mem=dst_mem, shape=()),
            )
        )
    return table


def compute_atomics() -> List[AtomicSpec]:
    """Thread-local FMA, pointwise, reduction, init and warp shuffles."""
    table: List[AtomicSpec] = [
        AtomicSpec(
            "hfma2", "MatMul", "hfma2", 1,
            [Op(dtype=FP16, shape=(2,)), Op(dtype=FP16, shape=(2,))],
            [Op(dtype=FP16, shape=(2,))],
            execute=X.exec_thread_matmul,
        ),
        AtomicSpec(
            "hfma", "MatMul", "hfma", 1,
            [Op(dtype=FP16, shape=()), Op(dtype=FP16, shape=())],
            [Op(dtype=FP16, shape=())],
            execute=X.exec_thread_matmul,
        ),
        AtomicSpec(
            "fmaf", "MatMul", "fmaf", 1,
            [Op(dtype=FP32, shape=()), Op(dtype=FP32, shape=())],
            [Op(dtype=FP32, shape=())],
            execute=X.exec_thread_matmul,
        ),
        # Mixed-precision scalar fallback (fp16 inputs, fp32 accumulator).
        AtomicSpec(
            "fma.mixed", "MatMul", "fma.rn.f32.f16", 1,
            [Op(shape=()), Op(shape=())], [Op(shape=())],
            execute=X.exec_thread_matmul,
        ),
        AtomicSpec(
            "hadd2", "BinaryPointwise", "hadd2", 1,
            [Op(dtype=FP16, shape=(2,)), Op(dtype=FP16, shape=(2,))],
            [Op(dtype=FP16, shape=(2,))],
            predicate=lambda s: s.op.name == "add",
            execute=X.exec_thread_binary,
        ),
        AtomicSpec(
            "hmul", "BinaryPointwise", "hmul", 1,
            [Op(dtype=FP16, shape=()), Op(dtype=FP16, shape=())],
            [Op(dtype=FP16, shape=())],
            predicate=lambda s: s.op.name == "mul",
            execute=X.exec_thread_binary,
        ),
    ]
    # Generic per-thread compute fallbacks (element counts must agree,
    # enforced by the executors).
    for n in (None,):
        table.extend(
            [
                AtomicSpec(
                    "binary.thread", "BinaryPointwise", "<op>", 1,
                    [Op(), Op()], [Op()],
                    execute=X.exec_thread_binary,
                ),
                AtomicSpec(
                    "unary.thread", "UnaryPointwise", "<op>", 1,
                    [Op()], [Op()],
                    execute=X.exec_thread_unary,
                ),
                AtomicSpec(
                    "reduce.thread", "Reduction", "<op-chain>", 1,
                    [Op()], [Op()],
                    execute=X.exec_thread_reduction,
                ),
                AtomicSpec(
                    "init.thread", "Init", "mov", 1,
                    [], [Op()],
                    execute=X.exec_thread_init,
                ),
            ]
        )
    table.append(
        AtomicSpec(
            "shfl.bfly", "Shfl", "shfl.sync.bfly.b32", 32,
            [Op(mem=RF)], [Op(mem=RF)],
            execute=X.exec_shfl_bfly,
        )
    )
    # Accumulator write-back: convert fp32 register pairs to fp16 and
    # store (cvt.rn.f16.f32 x2 + st.global.b32).
    for n, inst in ((2, "cvt.f16x2 + st.global.b32"),
                    (4, "cvt.f16x2 + st.global.v2.b32")):
        table.append(
            AtomicSpec(
                f"cvt.st.global.f16x{n}", "Move", inst, 1,
                [Op(mem=RF, dtype=FP32, shape=(n,), contiguous=True)],
                [Op(mem=GL, dtype=FP16, shape=(n,))],
                execute=X.exec_thread_move,
            )
        )
    return table


def ldmatrix_atomics() -> List[AtomicSpec]:
    """Warp-collective shared-to-register matrix loads (SM75+).

    The ``.trans`` form is selected by putting ``"trans"`` in the Move
    spec's label; it distributes the transposed 8x8 matrices (used for
    mma B operands).
    """
    table = []
    for num, shape in ((4, (2, 2)), (2, (2,)), (1, ())):
        for trans in (False, True):
            suffix = ".trans" if trans else ""
            table.append(
                AtomicSpec(
                    f"ldmatrix.x{num}{suffix}", "Move",
                    f"ldmatrix.sync.aligned.m8n8.x{num}{suffix}.shared.b16",
                    32,
                    [Op(mem=SH, dtype=FP16, shape=(8,), contiguous=True)],
                    [Op(mem=RF, dtype=FP16, shape=shape, tile_shape=(2,))],
                    predicate=(
                        (lambda s: "trans" in s.label) if trans
                        else (lambda s: "trans" not in s.label)
                    ),
                    execute=X.make_exec_ldmatrix(num, trans),
                )
            )
    return table


def generic_move() -> AtomicSpec:
    """Last-resort per-thread elementwise copy (an unrolled ld/st loop)."""
    return AtomicSpec(
        "move.thread.generic", "Move", "ld/st loop", 1,
        [Op()], [Op()], execute=X.exec_thread_move,
    )


def common_atomics() -> List[AtomicSpec]:
    return vector_moves() + compute_atomics()
