"""SM70 (Volta V100) architecture description.

Volta introduced Tensor Cores executed by *quad-pairs* — groups of eight
non-contiguous threads, e.g. threads 0-3 and 16-19 (paper Figure 6 and
Table 2).  Volta has no ldmatrix or cp.async; global-to-shared staging
goes through registers (modelled as a fused LDG+STS per-thread move).
"""

from __future__ import annotations

from ..specs.atomic import AtomicSpec, OperandPattern as Op
from ..tensor.dtypes import FP16, FP32
from ..tensor.memspace import GL, RF, SH
from . import instructions as X
from .atomics import common_atomics, generic_move
from .gpu import Architecture, register


def _volta_atomics():
    table = list(common_atomics())
    table.append(
        AtomicSpec(
            "mma.884", "MatMul",
            "mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32", 8,
            [
                Op(mem=RF, dtype=FP16, shape=(4,)),
                Op(mem=RF, dtype=FP16, shape=(4,)),
            ],
            [Op(mem=RF, dtype=FP32, shape=(2, 4))],
            execute=X.exec_mma_884,
        )
    )
    # Global-to-shared staging: one LDG+STS pair per thread.
    for dtype, n in ((FP16, 8), (FP32, 4), (FP16, 2)):
        table.append(
            AtomicSpec(
                f"ldg.sts.{dtype.name}x{n}", "Move",
                "ld.global + st.shared", 1,
                [Op(mem=GL, dtype=dtype, shape=(n,), contiguous=True)],
                [Op(mem=SH, dtype=dtype, shape=(n,))],
                execute=X.exec_thread_move,
            )
        )
    table.append(
        AtomicSpec(
            "ldg.sts.scalar", "Move", "ld.global + st.shared", 1,
            [Op(mem=GL, shape=())], [Op(mem=SH, shape=())],
            execute=X.exec_thread_move,
        )
    )
    table.append(generic_move())
    return table


#: NVIDIA V100 (SXM2): 80 SMs, 900 GB/s HBM2, 125 TFLOP/s fp16 Tensor
#: Cores, 15.7 TFLOP/s fp32 FMA.
VOLTA = Architecture(
    "V100", 70, _volta_atomics(),
    capabilities=("tensor_core",),
    num_sms=80,
    tensor_fp16_tflops=125.0,
    fp32_tflops=15.7,
    fp16_tflops=31.4,
    dram_gbps=900.0,
    smem_bytes_per_sm=96 * 1024,
    smem_gbps=15_700.0,
    launch_overhead_us=5.0,
)

register(VOLTA, "volta", aliases=("sm70",))
