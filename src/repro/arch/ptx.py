"""Shared PTX instruction semantics for the simulator and the emulator.

Two independent execution paths must agree on what each inline-PTX
instruction *does*: the functional simulator executes atomic specs
straight from the IR (:mod:`repro.arch.instructions`), while the
conformance emulator (:mod:`repro.codegen.emulator`) executes the
``asm volatile`` blocks of the *generated CUDA text*.  This module is
the single source of truth both dispatch to — pure numpy functions over
warp-gathered values, keyed by the exact instruction strings the atomic
tables print (paper Table 2).

The register-to-matrix-element mappings themselves live in
:mod:`repro.arch.fragments`; this module packages them into executable
warp-level semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from . import fragments as frag


class LdmatrixSemantics:
    """Warp-collective ``ldmatrix.sync.aligned.m8n8.x{1,2,4}[.trans]``.

    Lanes ``8q..8q+7`` supply the addresses of rows ``0..7`` of 8x8
    matrix ``q``; every lane then receives two adjacent 16-bit values
    per matrix (paper Figures 1a/1b).  ``.trans`` distributes the
    transposed matrices, as used for B operands.
    """

    __slots__ = ("num", "trans", "lanes")

    def __init__(self, num: int, trans: bool):
        self.num = num
        self.trans = trans
        self.lanes = 32

    def source_lane(self, q: int, row: int) -> int:
        """The lane whose address feeds ``row`` of matrix ``q``."""
        return frag.ldmatrix_src_lane(q, row)

    def distribute(self, matrices: Sequence[np.ndarray]) -> np.ndarray:
        """Per-lane received values for gathered 8x8 ``matrices``.

        ``matrices[q]`` is the 8x8 array whose row ``r`` came from the
        address supplied by :meth:`source_lane`.  Returns an array of
        shape ``(32, num, 2)``: the two values lane ``li`` receives for
        each matrix, in register order.
        """
        if len(matrices) != self.num:
            raise ValueError(
                f"ldmatrix.x{self.num} needs {self.num} gathered "
                f"matrices, got {len(matrices)}"
            )
        out = np.zeros((self.lanes, self.num, 2), dtype=matrices[0].dtype)
        for li in range(self.lanes):
            for q in range(self.num):
                for j in (0, 1):
                    r, c = frag.ldmatrix_dst_coords(li, q, j)
                    if self.trans:
                        r, c = c, r
                    out[li, q, j] = matrices[q][r, c]
        return out


class MmaSemantics:
    """Dense compute of one ``mma.sync`` instruction over its group.

    ``group`` lanes cooperate (a full warp for Ampere m16n8k16, a
    quad-pair for Volta m8n8k4); each holds fragments whose register
    ``r`` maps to matrix elements through the coordinate functions of
    :mod:`repro.arch.fragments`.
    """

    __slots__ = ("shape", "a_coord", "b_coord", "c_coord", "group")

    def __init__(
        self,
        shape: Tuple[int, int, int],
        a_coord: Callable[[int, int], Tuple[int, int]],
        b_coord: Callable[[int, int], Tuple[int, int]],
        c_coord: Callable[[int, int], Tuple[int, int]],
        group: int,
    ):
        self.shape = shape  # (m, n, k)
        self.a_coord = a_coord
        self.b_coord = b_coord
        self.c_coord = c_coord
        self.group = group

    def warp_partition(self) -> List[List[int]]:
        """How a 32-lane warp splits into cooperating groups, as lists
        of lane positions in group order.

        Ampere m16n8k16 uses the whole warp.  Volta m8n8k4 executes per
        quad-pair: the non-contiguous ``[(4,2):(1,16)]`` lane groups of
        paper Figure 6 (threads ``qp*4..qp*4+3`` and ``qp*4+16..19``),
        with in-group position ``t%4 + (t//16)%2 * 4``.
        """
        if self.group == 32:
            return [list(range(32))]
        if self.group == 8:
            return [
                [qp * 4 + r for r in range(4)]
                + [16 + qp * 4 + r for r in range(4)]
                for qp in range(4)
            ]
        raise ValueError(f"no warp partition for group size {self.group}")

    def warpgroup_partition(self) -> List[List[int]]:
        """How a 128-lane warpgroup splits into cooperating groups.

        A warpgroup-scope instruction (``group == 128``) uses all four
        warps as one group; warp- and quad-pair-scope instructions
        replicate their :meth:`warp_partition` across the warpgroup's
        four warps.
        """
        if self.group == 128:
            return [list(range(128))]
        return [
            [base + pos for pos in grp]
            for base in (0, 32, 64, 96)
            for grp in self.warp_partition()
        ]

    def compute(
        self,
        a_frags: Sequence[np.ndarray],
        b_frags: Sequence[np.ndarray],
        c_frags: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        """``d = a @ b + c`` from per-lane fragments, refragmented.

        Each ``*_frags[li]`` lists lane ``li``'s fragment values in
        register order; the result lists each lane's d-fragment in
        c-register order.  Math is fp32, matching Tensor Core
        accumulation.
        """
        m, n, k = self.shape
        if len(a_frags) != self.group:
            raise ValueError(
                f"mma expects {self.group} cooperating lanes, "
                f"got {len(a_frags)}"
            )
        a = np.zeros((m, k), dtype=np.float32)
        b = np.zeros((k, n), dtype=np.float32)
        c = np.zeros((m, n), dtype=np.float32)
        for li in range(self.group):
            for r, val in enumerate(a_frags[li]):
                a[self.a_coord(li, r)] = val
            for r, val in enumerate(b_frags[li]):
                b[self.b_coord(li, r)] = val
            for r, val in enumerate(c_frags[li]):
                c[self.c_coord(li, r)] = val
        d = a @ b + c
        return [
            np.array([d[self.c_coord(li, r)] for r in range(len(c_frags[li]))],
                     dtype=np.float32)
            for li in range(self.group)
        ]


class WgmmaSemantics(MmaSemantics):
    """Dense compute of one Hopper ``wgmma.mma_async`` instruction.

    Unlike ``mma.sync``, the A and B operands are *shared-memory tiles*
    (descriptor-addressed on hardware), not register fragments — so this
    class has no a/b coordinate functions and computes from dense
    ``(m, k)`` / ``(k, n)`` matrices directly.  Only the fp32
    accumulator is register-resident, fragmented by
    :func:`repro.arch.fragments.wgmma_c_coord` over the 128 cooperating
    lanes.  ``in_dtype`` names the operand element format (``"f16"`` or
    ``"e4m3"``); math is fp32 either way, matching the tensor-core
    datapath's promote-on-load.
    """

    __slots__ = ("in_dtype",)

    def __init__(self, shape: Tuple[int, int, int], in_dtype: str):
        super().__init__(shape, None, None, frag.wgmma_c_coord, group=128)
        self.in_dtype = in_dtype

    def compute_from_tiles(
        self,
        a_mat: np.ndarray,
        b_mat: np.ndarray,
        c_frags: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        """``d = a @ b + c`` from dense smem tiles, refragmented.

        ``a_mat``/``b_mat`` are the ``(m, k)``/``(k, n)`` operand tiles;
        ``c_frags[li]`` lists lane ``li``'s accumulator registers.  The
        simulator and the emulator both call this — one np.matmul on
        the same fp32 arrays, so the two paths are bit-identical.
        """
        m, n, k = self.shape
        if a_mat.shape != (m, k) or b_mat.shape != (k, n):
            raise ValueError(
                f"wgmma m{m}n{n}k{k} operand tiles must be "
                f"({m},{k})/({k},{n}), got {a_mat.shape}/{b_mat.shape}"
            )
        if len(c_frags) != self.group:
            raise ValueError(
                f"wgmma expects {self.group} cooperating lanes, "
                f"got {len(c_frags)}"
            )
        c = np.zeros((m, n), dtype=np.float32)
        for li in range(self.group):
            for r, val in enumerate(c_frags[li]):
                c[self.c_coord(li, r)] = val
        d = a_mat.astype(np.float32) @ b_mat.astype(np.float32) + c
        return [
            np.array(
                [d[self.c_coord(li, r)] for r in range(len(c_frags[li]))],
                dtype=np.float32,
            )
            for li in range(self.group)
        ]


class TmaSemantics:
    """One TMA bulk tensor copy (``cp.async.bulk.tensor``).

    A single warpgroup-scope instruction moves a whole 2-D tile between
    global and shared memory through descriptor-based addressing; the
    copy is asynchronous and must be committed/awaited before the data
    is visible (the simulator models the commit/wait ledger in
    :class:`repro.sim.machine.Machine`).  ``copy_tile`` is the shared
    data movement both the simulator executor and the emulator run.
    """

    __slots__ = ("lanes",)

    def __init__(self):
        self.lanes = 128

    @staticmethod
    def copy_tile(src: np.ndarray, src_off: int, src_strides,
                  dst: np.ndarray, dst_off: int, dst_strides,
                  rows: int, cols: int) -> None:
        """Copy a ``rows x cols`` tile (pure data movement, bit-exact)."""
        s_i, s_j = src_strides
        d_i, d_j = dst_strides
        ii = np.arange(rows)[:, None]
        jj = np.arange(cols)[None, :]
        src_idx = src_off + ii * s_i + jj * s_j
        dst_idx = dst_off + ii * d_i + jj * d_j
        dst[dst_idx] = src[src_idx].astype(dst.dtype, copy=False)


def shfl_bfly(values: Sequence, xor_mask: int) -> List:
    """``shfl.sync.bfly``: position ``li`` receives ``values[li ^ mask]``.

    Peers beyond the group keep their own value, mirroring the
    simulator's behaviour for narrow groups.
    """
    out = []
    for li in range(len(values)):
        peer = li ^ xor_mask
        if peer >= len(values):
            peer = li
        out.append(values[peer])
    return out


def _ampere_mma() -> MmaSemantics:
    return MmaSemantics(
        frag.MMA_16816_SHAPE,
        frag.mma_16816_a_coord, frag.mma_16816_b_coord,
        frag.mma_16816_c_coord, group=32,
    )


def _volta_mma() -> MmaSemantics:
    return MmaSemantics(
        frag.MMA_884_SHAPE,
        frag.mma_884_a_coord, frag.mma_884_b_coord,
        frag.mma_884_c_coord, group=8,
    )


#: Exact emitted instruction string -> warp-level semantics.  Keys match
#: the ``instruction`` fields of the atomic tables (and therefore the
#: first token of every generated ``asm volatile`` template).
PTX_SEMANTICS: Dict[str, object] = {
    "mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32": _ampere_mma(),
    "mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32": _volta_mma(),
    "wgmma.mma_async.sync.aligned.m64n64k16.f32.f16.f16":
        WgmmaSemantics((64, 64, 16), "f16"),
    "wgmma.mma_async.sync.aligned.m64n64k32.f32.e4m3.e4m3":
        WgmmaSemantics((64, 64, 32), "e4m3"),
    "cp.async.bulk.tensor.2d.shared.global": TmaSemantics(),
}
for _num in (1, 2, 4):
    for _trans in (False, True):
        _suffix = ".trans" if _trans else ""
        PTX_SEMANTICS[
            f"ldmatrix.sync.aligned.m8n8.x{_num}{_suffix}.shared.b16"
        ] = LdmatrixSemantics(_num, _trans)


def semantics_for(instruction: str):
    """Look up semantics by instruction string (or its first token)."""
    mnemonic = instruction.split()[0] if instruction else instruction
    try:
        return PTX_SEMANTICS[mnemonic]
    except KeyError:
        raise KeyError(
            f"no shared PTX semantics for {instruction!r}; known: "
            f"{sorted(PTX_SEMANTICS)}"
        ) from None
