"""Simulator semantics for every atomic specification.

Each ``exec_*`` function implements one GPU instruction's behaviour on the
simulated machine: per-thread loads/stores, warp-collective ldmatrix data
movements, Tensor Core mma fragments, warp shuffles, and thread-local
compute.  The atomic tables in :mod:`repro.arch.volta` and
:mod:`repro.arch.ampere` bind these to the patterns of paper Table 2.

The warp-level data movement/compute itself is delegated to the shared
PTX semantics of :mod:`repro.arch.ptx`, which the conformance emulator
(:mod:`repro.codegen.emulator`) also executes — the simulator and the
generated-CUDA path cannot drift apart numerically.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..layout import inttuple as it
from ..sim.context import ExecCtx
from ..specs.base import (
    BinaryPointwise, Init, MatMul, Move, Reduction, Shfl, Spec,
    UnaryPointwise,
)
from . import fragments as frag
from . import ptx


# -- per-thread data movement ----------------------------------------------------
def exec_thread_move(spec: Move, ctx: ExecCtx) -> None:
    """Per-thread load/store/copy of the view's elements."""
    src, dst = spec.src, spec.dst
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        ctx.write(dst, env, lane, ctx.read(src, env, lane))


# -- collective ldmatrix ------------------------------------------------------------
def make_exec_ldmatrix(num_matrices: int, trans: bool = False) -> Callable:
    """Build the executor for ``ldmatrix .x1/.x2/.x4`` (optionally .trans).

    Lanes ``8q..8q+7`` supply the addresses of rows ``0..7`` of matrix
    ``q`` (their src views must point at 8 contiguous fp16 values); every
    lane then receives two adjacent values per matrix into its
    destination tile ``q`` (paper Figures 1a/1b).  The ``.trans`` form
    distributes the transposed matrices, as used for B operands.
    """

    sem = ptx.LdmatrixSemantics(num_matrices, trans)

    def execute(spec: Move, ctx: ExecCtx) -> None:
        from ..sim.access import tile_views

        src, dst = spec.src, spec.dst
        lanes = ctx.lanes
        if len(lanes) != 32:
            raise ValueError("ldmatrix requires a full 32-lane warp")
        matrices = []
        for q in range(num_matrices):
            rows = []
            for row in range(8):
                lane = lanes[sem.source_lane(q, row)]
                env = ctx.lane_env(lane)
                rows.append(ctx.read(src, env, lane).reshape(8))
            matrices.append(np.stack(rows))
        dst_tiles = tile_views(dst)
        if len(dst_tiles) != num_matrices:
            raise ValueError(
                f"ldmatrix.x{num_matrices} destination must have "
                f"{num_matrices} tiles, got {len(dst_tiles)}"
            )
        received = sem.distribute(matrices)
        for li, lane in enumerate(lanes):
            env = ctx.lane_env(lane)
            for q, tile in enumerate(dst_tiles):
                ctx.write(tile, env, lane, received[li, q])

    return execute


# -- Tensor Core mma -------------------------------------------------------------------
def exec_mma_16816(spec: MatMul, ctx: ExecCtx) -> None:
    """Ampere ``mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32``."""
    _exec_mma(
        spec, ctx,
        ptx.semantics_for("mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32"),
    )


def exec_mma_884(spec: MatMul, ctx: ExecCtx) -> None:
    """Volta quad-pair ``mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32``."""
    _exec_mma(
        spec, ctx,
        ptx.semantics_for("mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32"),
    )


def _exec_mma(spec, ctx, sem: "ptx.MmaSemantics"):
    lanes = ctx.lanes
    if len(lanes) != sem.group:
        raise ValueError(
            f"mma expects {sem.group} cooperating lanes, got {len(lanes)}"
        )
    a_frags, b_frags, c_frags = [], [], []
    for lane in lanes:
        env = ctx.lane_env(lane)
        a_frags.append(ctx.read_frag(spec.a, env, lane))
        b_frags.append(ctx.read_frag(spec.b, env, lane))
        c_frags.append(ctx.read_frag(spec.c, env, lane))
    d_frags = sem.compute(a_frags, b_frags, c_frags)
    for li, lane in enumerate(lanes):
        env = ctx.lane_env(lane)
        ctx.write_frag(spec.c, env, lane, d_frags[li])


# -- thread-local compute ------------------------------------------------------------
def exec_thread_matmul(spec: MatMul, ctx: ExecCtx) -> None:
    """Scalar/vector FMA: ``c[i] += a[i] * b[i]`` in fp32 math."""
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        a = ctx.read(spec.a, env, lane).astype(np.float32)
        b = ctx.read(spec.b, env, lane).astype(np.float32)
        c = ctx.read(spec.c, env, lane).astype(np.float32)
        ctx.write(spec.c, env, lane, c + a * b)


def exec_thread_unary(spec: UnaryPointwise, ctx: ExecCtx) -> None:
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        x = ctx.read(spec.inputs[0], env, lane).astype(np.float32)
        ctx.write(spec.outputs[0], env, lane, spec.op(x))


def exec_thread_binary(spec: BinaryPointwise, ctx: ExecCtx) -> None:
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        x = ctx.read(spec.inputs[0], env, lane).astype(np.float32)
        y = ctx.read(spec.inputs[1], env, lane).astype(np.float32)
        ctx.write(spec.outputs[0], env, lane, spec.op(x, y))


def exec_thread_reduction(spec: Reduction, ctx: ExecCtx) -> None:
    """Sequentially reduce a register tensor along the spec's axes."""
    src = spec.inputs[0]
    shape = src.layout.shape
    dims = tuple(it.flatten(shape)) if shape != () else (1,)
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        vals = ctx.read(src, env, lane).astype(np.float32)
        grid = vals.reshape(dims, order="F")
        ctx.write(spec.outputs[0], env, lane,
                  np.ravel(_fold(spec, grid), order="F"))


def _fold(spec: Reduction, grid: np.ndarray) -> np.ndarray:
    # Element-at-a-time on purpose: the generated CUDA reduces with a
    # strict sequential operator chain, and ufunc reduce (unrolled /
    # pairwise summation) rounds differently for fp32 sums past ~16
    # elements, breaking bit-agreement with the emulated text.
    out = None
    flattened = np.moveaxis(
        grid, spec.axes, tuple(range(len(spec.axes)))
    ).reshape(-1, *[s for i, s in enumerate(grid.shape) if i not in spec.axes])
    for slice_ in flattened:
        out = slice_ if out is None else spec.op(out, slice_)
    return out if out is not None else grid


def exec_thread_init(spec: Init, ctx: ExecCtx) -> None:
    out = spec.outputs[0]
    size = out.layout.size() if out.rank else 1
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        ctx.write(out, env, lane, np.full(size, spec.value))


# -- warp shuffle -----------------------------------------------------------------------
def exec_shfl_bfly(spec: Shfl, ctx: ExecCtx) -> None:
    """``shfl.sync.bfly``: lane ``li`` receives from lane ``li ^ mask``."""
    src, dst = spec.inputs[0], spec.outputs[0]
    lanes = ctx.lanes
    values = []
    for lane in lanes:
        env = ctx.lane_env(lane)
        values.append(ctx.read(src, env, lane))
    shuffled = ptx.shfl_bfly(values, spec.xor_mask)
    for li, lane in enumerate(lanes):
        env = ctx.lane_env(lane)
        ctx.write(dst, env, lane, shuffled[li])
