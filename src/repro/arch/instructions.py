"""Simulator semantics for every atomic specification.

Each ``exec_*`` function implements one GPU instruction's behaviour on the
simulated machine: per-thread loads/stores, warp-collective ldmatrix data
movements, Tensor Core mma fragments, warp shuffles, and thread-local
compute.  The atomic tables in :mod:`repro.arch.volta` and
:mod:`repro.arch.ampere` bind these to the patterns of paper Table 2.

The warp-level data movement/compute itself is delegated to the shared
PTX semantics of :mod:`repro.arch.ptx`, which the conformance emulator
(:mod:`repro.codegen.emulator`) also executes — the simulator and the
generated-CUDA path cannot drift apart numerically.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..layout import inttuple as it
from ..sim.context import ExecCtx
from ..specs.base import (
    BinaryPointwise, Init, MatMul, Move, Reduction, Shfl, Spec,
    UnaryPointwise,
)
from . import fragments as frag
from . import ptx


# -- per-thread data movement ----------------------------------------------------
def exec_thread_move(spec: Move, ctx: ExecCtx) -> None:
    """Per-thread load/store/copy of the view's elements."""
    src, dst = spec.src, spec.dst
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        ctx.write(dst, env, lane, ctx.read(src, env, lane))


# -- collective ldmatrix ------------------------------------------------------------
def make_exec_ldmatrix(num_matrices: int, trans: bool = False) -> Callable:
    """Build the executor for ``ldmatrix .x1/.x2/.x4`` (optionally .trans).

    Lanes ``8q..8q+7`` supply the addresses of rows ``0..7`` of matrix
    ``q`` (their src views must point at 8 contiguous fp16 values); every
    lane then receives two adjacent values per matrix into its
    destination tile ``q`` (paper Figures 1a/1b).  The ``.trans`` form
    distributes the transposed matrices, as used for B operands.
    """

    sem = ptx.LdmatrixSemantics(num_matrices, trans)

    def execute(spec: Move, ctx: ExecCtx) -> None:
        from ..sim.access import tile_views

        src, dst = spec.src, spec.dst
        lanes = ctx.lanes
        if len(lanes) != 32:
            raise ValueError("ldmatrix requires a full 32-lane warp")
        matrices = []
        for q in range(num_matrices):
            rows = []
            for row in range(8):
                lane = lanes[sem.source_lane(q, row)]
                env = ctx.lane_env(lane)
                rows.append(ctx.read(src, env, lane).reshape(8))
            matrices.append(np.stack(rows))
        dst_tiles = tile_views(dst)
        if len(dst_tiles) != num_matrices:
            raise ValueError(
                f"ldmatrix.x{num_matrices} destination must have "
                f"{num_matrices} tiles, got {len(dst_tiles)}"
            )
        received = sem.distribute(matrices)
        for li, lane in enumerate(lanes):
            env = ctx.lane_env(lane)
            for q, tile in enumerate(dst_tiles):
                ctx.write(tile, env, lane, received[li, q])

    return execute


# -- Tensor Core mma -------------------------------------------------------------------
def exec_mma_16816(spec: MatMul, ctx: ExecCtx) -> None:
    """Ampere ``mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32``."""
    _exec_mma(
        spec, ctx,
        ptx.semantics_for("mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32"),
    )


def exec_mma_884(spec: MatMul, ctx: ExecCtx) -> None:
    """Volta quad-pair ``mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32``."""
    _exec_mma(
        spec, ctx,
        ptx.semantics_for("mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32"),
    )


def _exec_mma(spec, ctx, sem: "ptx.MmaSemantics"):
    lanes = ctx.lanes
    if len(lanes) != sem.group:
        raise ValueError(
            f"mma expects {sem.group} cooperating lanes, got {len(lanes)}"
        )
    a_frags, b_frags, c_frags = [], [], []
    for lane in lanes:
        env = ctx.lane_env(lane)
        a_frags.append(ctx.read_frag(spec.a, env, lane))
        b_frags.append(ctx.read_frag(spec.b, env, lane))
        c_frags.append(ctx.read_frag(spec.c, env, lane))
    d_frags = sem.compute(a_frags, b_frags, c_frags)
    for li, lane in enumerate(lanes):
        env = ctx.lane_env(lane)
        ctx.write_frag(spec.c, env, lane, d_frags[li])


# -- Hopper warpgroup mma ---------------------------------------------------------------
def make_exec_wgmma(instruction: str) -> Callable:
    """Build the executor for a Hopper ``wgmma.mma_async`` instruction.

    All 128 lanes of the warpgroup cooperate; the A and B operands are
    shared-memory tiles read once for the whole group (the hardware
    streams them through descriptors, not the register file), and only
    the fp32 accumulator is a per-lane register fragment
    (:func:`repro.arch.fragments.wgmma_c_coord`).
    """

    sem = ptx.semantics_for(instruction)

    def execute(spec: MatMul, ctx: ExecCtx) -> None:
        lanes = ctx.lanes
        if len(lanes) != sem.group:
            raise ValueError(
                f"wgmma expects {sem.group} cooperating lanes, "
                f"got {len(lanes)}"
            )
        m, n, k = sem.shape
        lead = lanes[0]
        env = ctx.lane_env(lead)
        a_mat = ctx.read(spec.a, env, lead).reshape((m, k), order="F")
        b_mat = ctx.read(spec.b, env, lead).reshape((k, n), order="F")
        c_frags = [
            ctx.read_frag(spec.c, ctx.lane_env(lane), lane) for lane in lanes
        ]
        d_frags = sem.compute_from_tiles(a_mat, b_mat, c_frags)
        for li, lane in enumerate(lanes):
            ctx.write_frag(spec.c, ctx.lane_env(lane), lane, d_frags[li])

    return execute


# -- Hopper TMA bulk copy -----------------------------------------------------------------
def exec_tma_bulk_g2s(spec: Move, ctx: ExecCtx) -> None:
    """TMA ``cp.async.bulk.tensor``: one descriptor-driven tile copy.

    A single instruction issued by the warpgroup moves the whole tile
    global-to-shared, bypassing the register file.  The copy is
    *asynchronous*: it is committed against the machine's TMA ledger and
    only guaranteed visible after the next barrier drains it — reading
    the destination before that is a simulation error.
    """
    lanes = ctx.lanes
    lead = lanes[0]
    env = ctx.lane_env(lead)
    values = ctx.read(spec.src, env, lead, bulk=True)
    ctx.write(spec.dst, env, lead, values, bulk=True)
    ctx.machine.tma_commit(ctx.block_id)


# -- 2:4 structured-sparsity decompress ---------------------------------------------------
def exec_sparse24_decompress(spec: Spec, ctx: ExecCtx) -> None:
    """Expand a 2:4-compressed operand tile to dense in shared memory.

    ``inputs[0]`` is the compressed ``(m, k/2)`` fp16 tile, ``inputs[1]``
    the ``(m, k/2)`` metadata tile whose entry ``(i, 2g+h)`` names the
    column (0..3) that value ``h`` of group ``g`` occupies; per group the
    two indices must be distinct and ascending.  ``outputs[0]`` receives
    the dense ``(m, k)`` tile with zeros in the pruned positions.
    """
    comp, meta = spec.inputs
    dense = spec.outputs[0]
    lead = ctx.lanes[0]
    env = ctx.lane_env(lead)
    m, half_k = tuple(it.flatten(comp.layout.shape))
    comp_mat = ctx.read(comp, env, lead).reshape((m, half_k), order="F")
    meta_mat = ctx.read(meta, env, lead).reshape(
        (m, half_k), order="F").astype(np.int64)
    if np.any(meta_mat < 0) or np.any(meta_mat > 3):
        raise ValueError("2:4 metadata indices must be in 0..3")
    lo, hi = meta_mat[:, 0::2], meta_mat[:, 1::2]
    if np.any(lo >= hi):
        raise ValueError(
            "2:4 metadata must name two distinct ascending columns "
            "per group of four"
        )
    out = np.zeros((m, 2 * half_k), dtype=comp_mat.dtype)
    rows = np.arange(m)[:, None]
    groups = np.arange(half_k // 2)[None, :]
    out[rows, 4 * groups + lo] = comp_mat[:, 0::2]
    out[rows, 4 * groups + hi] = comp_mat[:, 1::2]
    ctx.write(dense, env, lead, np.ravel(out, order="F"))


# -- thread-local compute ------------------------------------------------------------
def exec_thread_matmul(spec: MatMul, ctx: ExecCtx) -> None:
    """Scalar/vector FMA: ``c[i] += a[i] * b[i]`` in fp32 math."""
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        a = ctx.read(spec.a, env, lane).astype(np.float32)
        b = ctx.read(spec.b, env, lane).astype(np.float32)
        c = ctx.read(spec.c, env, lane).astype(np.float32)
        ctx.write(spec.c, env, lane, c + a * b)


def exec_thread_unary(spec: UnaryPointwise, ctx: ExecCtx) -> None:
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        x = ctx.read(spec.inputs[0], env, lane).astype(np.float32)
        ctx.write(spec.outputs[0], env, lane, spec.op(x))


def exec_thread_binary(spec: BinaryPointwise, ctx: ExecCtx) -> None:
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        x = ctx.read(spec.inputs[0], env, lane).astype(np.float32)
        y = ctx.read(spec.inputs[1], env, lane).astype(np.float32)
        ctx.write(spec.outputs[0], env, lane, spec.op(x, y))


def exec_thread_reduction(spec: Reduction, ctx: ExecCtx) -> None:
    """Sequentially reduce a register tensor along the spec's axes."""
    src = spec.inputs[0]
    shape = src.layout.shape
    dims = tuple(it.flatten(shape)) if shape != () else (1,)
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        vals = ctx.read(src, env, lane).astype(np.float32)
        grid = vals.reshape(dims, order="F")
        ctx.write(spec.outputs[0], env, lane,
                  np.ravel(_fold(spec, grid), order="F"))


def _fold(spec: Reduction, grid: np.ndarray) -> np.ndarray:
    # Element-at-a-time on purpose: the generated CUDA reduces with a
    # strict sequential operator chain, and ufunc reduce (unrolled /
    # pairwise summation) rounds differently for fp32 sums past ~16
    # elements, breaking bit-agreement with the emulated text.
    out = None
    flattened = np.moveaxis(
        grid, spec.axes, tuple(range(len(spec.axes)))
    ).reshape(-1, *[s for i, s in enumerate(grid.shape) if i not in spec.axes])
    for slice_ in flattened:
        out = slice_ if out is None else spec.op(out, slice_)
    return out if out is not None else grid


def exec_thread_init(spec: Init, ctx: ExecCtx) -> None:
    out = spec.outputs[0]
    size = out.layout.size() if out.rank else 1
    for lane in ctx.lanes:
        env = ctx.lane_env(lane)
        if not ctx.active(env):
            continue
        ctx.write(out, env, lane, np.full(size, spec.value))


# -- warp shuffle -----------------------------------------------------------------------
def exec_shfl_bfly(spec: Shfl, ctx: ExecCtx) -> None:
    """``shfl.sync.bfly``: lane ``li`` receives from lane ``li ^ mask``."""
    src, dst = spec.inputs[0], spec.outputs[0]
    lanes = ctx.lanes
    values = []
    for lane in lanes:
        env = ctx.lane_env(lane)
        values.append(ctx.read(src, env, lane))
    shuffled = ptx.shfl_bfly(values, spec.xor_mask)
    for li, lane in enumerate(lanes):
        env = ctx.lane_env(lane)
        ctx.write(dst, env, lane, shuffled[li])
