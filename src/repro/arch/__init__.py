"""GPU architectures: atomic-spec tables and hardware parameters.

Architectures live in a capability-declaring registry: modules call
:func:`register` at import time, consumers look targets up with
:func:`architecture` and select features through
:meth:`Architecture.supports` (``"tma"``, ``"wgmma"``, ``"fp8"``,
``"sparse_24"``, ...) instead of comparing architecture names.  Adding a
new GPU generation is a registration, not a grep.
"""

import warnings as _warnings

try:
    from collections.abc import Mapping as _Mapping
except ImportError:  # pragma: no cover
    from collections import Mapping as _Mapping

from .ampere import AMPERE
from .gpu import Architecture, architecture, register, registered
from .hopper import HOPPER
from .volta import VOLTA


class _DeprecatedArchView(_Mapping):
    """Read-only ``{"volta": ..., "ampere": ...}`` compatibility view.

    Importing it is silent; *using* it warns once per access pattern so
    stragglers learn to migrate to :func:`architecture` /
    :func:`registered` without breaking.
    """

    def _warn(self):
        _warnings.warn(
            "repro.arch.ARCHITECTURES is deprecated; look architectures "
            "up with repro.arch.architecture(name) and enumerate them "
            "with repro.arch.registered()",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, key):
        self._warn()
        return architecture(key)

    def __iter__(self):
        self._warn()
        return iter(registered())

    def __len__(self):
        self._warn()
        return len(registered())

    def __repr__(self):
        return f"ARCHITECTURES(deprecated view of {list(registered())})"


ARCHITECTURES = _DeprecatedArchView()

__all__ = [
    "AMPERE", "HOPPER", "VOLTA", "Architecture", "ARCHITECTURES",
    "architecture", "register", "registered",
]
