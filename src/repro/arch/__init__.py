"""GPU architectures: atomic-spec tables and hardware parameters."""

from .ampere import AMPERE
from .gpu import Architecture, architecture
from .volta import VOLTA

ARCHITECTURES = {"volta": VOLTA, "ampere": AMPERE}

__all__ = ["AMPERE", "VOLTA", "Architecture", "ARCHITECTURES", "architecture"]
