"""SM86 (Ampere RTX A6000) architecture description.

Ampere's warp-wide ``mma.m16n8k16`` replaced Volta's quad-pair
instructions (an example of why Graphene keeps thread hierarchies
*logical* rather than built-in), and added ``ldmatrix`` tensorized
shared-to-register moves plus ``cp.async`` global-to-shared copies.
"""

from __future__ import annotations

from ..specs.atomic import AtomicSpec, OperandPattern as Op
from ..tensor.dtypes import FP16, FP32
from ..tensor.memspace import GL, RF, SH
from . import instructions as X
from .atomics import common_atomics, generic_move, ldmatrix_atomics
from .gpu import Architecture, register


def _ampere_atomics():
    table = list(common_atomics())
    table.extend(ldmatrix_atomics())
    table.append(
        AtomicSpec(
            "mma.16816", "MatMul",
            "mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32", 32,
            [
                Op(mem=RF, dtype=FP16, shape=(2, 2), tile_shape=(2,)),
                Op(mem=RF, dtype=FP16, shape=(2,), tile_shape=(2,)),
            ],
            [Op(mem=RF, dtype=FP32, shape=(2,), tile_shape=(2,))],
            execute=X.exec_mma_16816,
        )
    )
    # Asynchronous global-to-shared copies (bypass the register file).
    for dtype, n in ((FP16, 8), (FP32, 4), (FP16, 4)):
        table.append(
            AtomicSpec(
                f"cp.async.{dtype.name}x{n}", "Move",
                f"cp.async.cg.shared.global [{dtype.name} x{n}]", 1,
                [Op(mem=GL, dtype=dtype, shape=(n,), contiguous=True)],
                [Op(mem=SH, dtype=dtype, shape=(n,))],
                execute=X.exec_thread_move,
            )
        )
    table.append(generic_move())
    return table


#: NVIDIA RTX A6000 (GA102): 84 SMs, 768 GB/s GDDR6, ~155 TFLOP/s fp16
#: Tensor Cores with fp32 accumulation, 38.7 TFLOP/s fp32 FMA.
AMPERE = Architecture(
    "RTX A6000", 86, _ampere_atomics(),
    capabilities=("tensor_core", "ldmatrix", "cp_async"),
    num_sms=84,
    tensor_fp16_tflops=154.8,
    fp32_tflops=38.7,
    fp16_tflops=38.7,
    dram_gbps=768.0,
    smem_bytes_per_sm=100 * 1024,
    smem_gbps=19_000.0,
    launch_overhead_us=5.0,
)

register(AMPERE, "ampere", aliases=("sm86", "sm80"))
