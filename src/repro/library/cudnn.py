"""cuDNN-style pointwise/elementwise kernel cost model.

Used for the unfused LSTM baseline (paper Figure 12): each graph node
that is not a GEMM lowers to one bandwidth-bound elementwise kernel.
"""

from __future__ import annotations

from ..arch.gpu import Architecture


class CuDNN:
    """Bandwidth-bound elementwise kernels with launch overhead."""

    def __init__(self, arch: Architecture, dram_efficiency: float = 0.82):
        self.arch = arch
        self.dram_efficiency = dram_efficiency

    def pointwise_seconds(
        self,
        elements: int,
        num_inputs: int = 2,
        dtype_bytes: int = 2,
    ) -> float:
        """One elementwise kernel: read all inputs, write one output."""
        traffic = (num_inputs + 1) * elements * dtype_bytes
        bandwidth = self.arch.dram_gbps * 1e9 * self.dram_efficiency
        return traffic / bandwidth + self.arch.launch_overhead_us * 1e-6

    def bias_activation_seconds(self, m: int, n: int) -> float:
        """Fused bias + activation over an [m, n] tensor (reads bias)."""
        traffic = (2 * m * n + n) * 2
        bandwidth = self.arch.dram_gbps * 1e9 * self.dram_efficiency
        return traffic / bandwidth + self.arch.launch_overhead_us * 1e-6
