"""PyTorch / Apex / TensorRT baseline cost models (paper Figures 13-15).

Each implementation style differs in how many kernels it launches and
how much DRAM traffic it generates for the same computation:

* **Eager** Layernorm materialises intermediates (mean, centered,
  variance, normalised) across several bandwidth-bound kernels;
* **JIT** (TorchScript) fuses the pointwise chain but still splits the
  reductions from the normalisation;
* the built-in **fused** operator and **Apex**'s kernel are single-pass
  Welford-style kernels — the performance Graphene matches (Figure 13);
* **TensorRT's MLPerf FMHA** kernel is the handwritten fused attention
  Graphene slightly outperforms thanks to better shared-memory layouts
  (Figure 14).
"""

from __future__ import annotations

from typing import Tuple

from ..arch.gpu import Architecture
from .cublas import CuBLAS

_DTYPE_BYTES = 2


class PyTorchRef:
    """Kernel-count/traffic models for PyTorch execution styles."""

    #: (kernel launches, DRAM-traffic multiplier over the single-pass
    #: minimum, bandwidth efficiency) per implementation.
    LAYERNORM_IMPLS = {
        "eager": (6, 3.0, 0.70),
        "jit": (3, 2.0, 0.75),
        "fused": (1, 1.0, 0.80),
        "apex": (1, 1.0, 0.84),
    }

    def __init__(self, arch: Architecture):
        self.arch = arch
        self.blas = CuBLAS(arch)

    def layernorm_seconds(self, rows: int, hidden: int,
                          impl: str = "eager") -> float:
        try:
            kernels, traffic_mult, eff = self.LAYERNORM_IMPLS[impl]
        except KeyError:
            raise ValueError(f"unknown layernorm impl {impl!r}") from None
        base_traffic = 2.0 * rows * hidden * _DTYPE_BYTES  # read + write
        bandwidth = self.arch.dram_gbps * 1e9 * eff
        return (
            base_traffic * traffic_mult / bandwidth
            + kernels * self.arch.launch_overhead_us * 1e-6
        )

    def softmax_seconds(self, rows: int, cols: int,
                        fused: bool = True) -> float:
        kernels = 1 if fused else 3
        traffic = (2.0 if fused else 4.0) * rows * cols * _DTYPE_BYTES
        bandwidth = self.arch.dram_gbps * 1e9 * 0.75
        return traffic / bandwidth + kernels * self.arch.launch_overhead_us * 1e-6

    def unfused_attention_seconds(
        self, heads: int, batch: int, seq: int, dim: int,
        softmax_fused: bool = True,
    ) -> float:
        """Two cuBLAS batched GEMMs + a softmax kernel.

        ``softmax_fused=False`` models the straightforward multi-kernel
        softmax of the paper's Figure 14 baseline; the default models
        PyTorch eager inference (fused softmax op) for Figure 15."""
        bh = heads * batch
        qk = self.blas.gemm_seconds(bh * seq, seq, dim)
        pv = self.blas.gemm_seconds(bh * seq, dim, seq)
        sm = self.softmax_seconds(bh * seq, seq, fused=softmax_fused)
        return qk + pv + sm


class TensorRTFMHA:
    """NVIDIA's handwritten fused MLPerf BERT attention kernels."""

    def __init__(self, arch: Architecture):
        self.arch = arch
        self.blas = CuBLAS(arch)

    def fmha_seconds(self, heads: int, batch: int, seq: int, dim: int
                     ) -> float:
        """One fused kernel; compute-bound on the two GEMMs with a
        small shared-memory-layout penalty relative to Graphene's
        kernel (paper: "a small speedup ... due to optimized shared
        memory layouts")."""
        bh = heads * batch
        flops = 2.0 * bh * seq * seq * dim * 2  # QK^T and PV
        tensor = self.arch.tensor_fp16_tflops * 1e12 * 0.62
        softmax_traffic = 2.0 * bh * seq * seq * 4  # fp32 scores
        smem = self.arch.smem_gbps * 1e9 * 0.60
        seconds = flops / tensor + softmax_traffic / smem
        return seconds * 1.06 + self.arch.launch_overhead_us * 1e-6
