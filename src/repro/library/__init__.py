"""Library baselines: cost models + functional references."""

from .cublas import CUBLAS_TILE, CuBLAS, CuBLASLt
from .cudnn import CuDNN
from .torchref import PyTorchRef, TensorRTFMHA
from . import funcs

__all__ = [
    "CUBLAS_TILE", "CuBLAS", "CuBLASLt", "CuDNN", "PyTorchRef",
    "TensorRTFMHA", "funcs",
]
