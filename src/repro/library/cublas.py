"""cuBLAS(Lt) baseline cost models (library substitutes; see DESIGN.md).

cuBLAS delivers "the practically achievable peak performance" for GEMM
(paper Section 6); the model charges the library the same roofline as a
Graphene kernel with its standard 128x128x32 thread-block tile.
cuBLASLt adds fused pointwise epilogues and GEMM accumulation
(``C += A @ B``), but cannot fuse *across* GEMMs — the limitation the
paper's MLP/LSTM experiments exploit.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..arch.gpu import Architecture
from ..perfmodel.counts import KernelCounts
from ..perfmodel.model import Efficiency, KernelEstimate, PerfModel

#: cuBLAS runtime heuristics pick this tile for the paper's problem
#: sizes (Section 6, footnote 1).
CUBLAS_TILE = (128, 128, 32)


class CuBLAS:
    """GEMM kernels at library-class efficiency."""

    def __init__(self, arch: Architecture,
                 efficiency: Optional[Efficiency] = None):
        self.arch = arch
        self.model = PerfModel(arch, efficiency)

    def gemm_counts(
        self,
        m: int,
        n: int,
        k: int,
        tile: Tuple[int, int, int] = CUBLAS_TILE,
    ) -> KernelCounts:
        """Analytic work model of a tiled fp16 Tensor Core GEMM."""
        bm, bn, bk = tile
        blocks_m = -(-m // bm)
        blocks_n = -(-n // bn)
        counts = KernelCounts()
        counts.blocks = blocks_m * blocks_n
        counts.threads_per_block = 128
        elem = 2  # fp16 bytes
        # Each block stages full A-rows and B-columns once.
        counts.dram_read_bytes = (
            blocks_n * m * k * elem + blocks_m * k * n * elem
        )
        counts.dram_write_bytes = m * n * elem
        counts.tensor_flops = 2.0 * m * n * k
        counts.unique_read_bytes = (m * k + k * n) * elem
        counts.unique_write_bytes = m * n * elem
        # Staged tiles are written once, then read into register
        # fragments: ~0.125 B/flop via per-thread quad loads on Volta,
        # ~0.023 B/flop via ldmatrix on Ampere and later.
        frag_bytes_per_flop = (
            0.023 if self.arch.supports("ldmatrix") else 0.125
        )
        staged = counts.dram_read_bytes
        counts.smem_bytes = staged + counts.tensor_flops * frag_bytes_per_flop
        counts.smem_footprint = (bm * bk + bk * bn) * elem
        return counts

    def gemm_estimate(self, m: int, n: int, k: int) -> KernelEstimate:
        counts = self.gemm_counts(m, n, k)
        return self.model.estimate_counts(counts, f"cublas_gemm_{m}x{n}x{k}")

    def gemm_seconds(self, m: int, n: int, k: int) -> float:
        """One GEMM launch, including launch overhead."""
        return self.gemm_estimate(m, n, k).total_seconds


class CuBLASLt(CuBLAS):
    """cuBLASLt: GEMM with fused pointwise epilogues."""

    def gemm_epilogue_estimate(
        self,
        m: int,
        n: int,
        k: int,
        bias: bool = True,
        activation: Optional[str] = "relu",
    ) -> KernelEstimate:
        counts = self.gemm_counts(m, n, k)
        if bias:
            counts.dram_read_bytes += float(m * n * 2)
            counts.unique_read_bytes += n * 2
            counts.pointwise_flops += float(m * n)
        if activation is not None:
            counts.pointwise_flops += float(m * n)
        name = f"cublaslt_gemm_{'bias_' if bias else ''}{activation}"
        return self.model.estimate_counts(counts, name)

    def gemm_epilogue_seconds(self, m, n, k, bias=True, activation="relu"
                              ) -> float:
        return self.gemm_epilogue_estimate(m, n, k, bias, activation).total_seconds

    def mlp_layer_seconds(self, m: int, hidden: int) -> float:
        """One MLP layer (GEMM + bias + ReLU) as a cuBLASLt launch."""
        return self.gemm_epilogue_seconds(m, hidden, hidden)

    def lstm_two_kernel_seconds(self, m: int, n: int, k: int) -> float:
        """The optimized 2-kernel library LSTM lowering (paper Fig 12):
        second GEMM accumulates into the first one's output and fuses
        bias + activation."""
        first = self.gemm_estimate(m, n, k).total_seconds
        second = self.gemm_epilogue_estimate(m, n, k).total_seconds
        # Accumulation re-reads C once.
        extra = (m * n * 2) / (self.arch.dram_gbps * 1e9 * 0.82)
        return first + second + extra
