"""Functional numpy references for every evaluated tensor computation.

These serve two roles: the "library result" against which fused
Graphene kernels are numerically validated, and the canonical
definitions of the paper's evaluation workloads (Figures 9-15).
All math is fp32 with fp16 quantisation at tensor boundaries, matching
fp16-in/fp32-accumulate GPU kernels.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def _f32(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


def gemm(a, b) -> np.ndarray:
    """``A @ B`` with fp32 accumulation."""
    return _f32(a) @ _f32(b)


def gemm_bias_act(a, b, bias=None, activation=None) -> np.ndarray:
    out = gemm(a, b)
    if bias is not None:
        out = out + _f32(bias)
    if activation is not None:
        out = activation_fn(activation)(out)
    return out


def activation_fn(name: str):
    if name == "relu":
        return lambda x: np.maximum(x, 0.0)
    if name == "tanh":
        return np.tanh
    if name == "gelu":
        return lambda x: 0.5 * x * (
            1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x ** 3))
        )
    if name in (None, "identity"):
        return lambda x: x
    raise ValueError(f"unknown activation {name!r}")


def mlp(x, weights: Sequence, biases: Sequence, activation="relu",
        quantize=True) -> np.ndarray:
    """Multi-layer perceptron with per-layer fp16 quantisation."""
    act = activation_fn(activation)
    out = _f32(x)
    for w, b in zip(weights, biases):
        out = act(out @ _f32(w) + _f32(b))
        if quantize:
            out = out.astype(np.float16).astype(np.float32)
    return out


def lstm_cell(x, w, h, r, bias, activation="relu") -> np.ndarray:
    """The paper's simplified LSTM cell: ``act(xW + hR + bias)``."""
    act = activation_fn(activation)
    return act(gemm(x, w) + gemm(h, r) + _f32(bias))


def layernorm(x, gamma, beta, eps: float = 1e-5) -> np.ndarray:
    x = _f32(x)
    mu = x.mean(axis=-1, keepdims=True)
    var = ((x - mu) ** 2).mean(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + eps) * _f32(gamma) + _f32(beta)


def softmax(x, axis: int = -1) -> np.ndarray:
    x = _f32(x)
    e = np.exp(x - x.max(axis=axis, keepdims=True))
    return e / e.sum(axis=axis, keepdims=True)


def attention(q, k, v, scale=None) -> np.ndarray:
    """Single-head scaled dot-product attention."""
    q, k, v = _f32(q), _f32(k), _f32(v)
    if scale is None:
        scale = 1.0 / np.sqrt(q.shape[-1])
    return softmax(q @ k.swapaxes(-1, -2) * scale) @ v


def multi_head_attention(q, k, v, heads: int) -> np.ndarray:
    """q/k/v: [heads*seq, dim] stacked per head (the FMHA kernel layout)."""
    seq = q.shape[0] // heads
    out = np.zeros_like(_f32(q))
    for h in range(heads):
        sl = slice(h * seq, (h + 1) * seq)
        out[sl] = attention(q[sl], k[sl], v[sl])
    return out
