"""Static FLOP/byte accounting over kernel IR.

The performance model does not hardcode per-kernel workloads: it walks
the kernel's decomposition once, multiplying each leaf spec's work by
its loop trip counts, executing-instance count, and the grid size.
Because staging Moves appear explicitly in Graphene IR, data reuse
through shared memory (tile reuse) is captured exactly — the model
charges DRAM only for what the kernel actually moves.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir.expr import IntExpr
from ..ir.stmt import Block, Comment, ForLoop, If, SpecStmt, Stmt, SyncThreads, SyncWarp
from ..specs.atomic import match_atomic
from ..specs.base import (
    Allocate, BinaryPointwise, Init, MatMul, Move, Reduction, Shfl, Spec,
    UnaryPointwise,
)
from ..specs.kernel import Kernel
from ..tensor.memspace import GL, RF, SH
from ..tensor.tensor import Tile


class KernelCounts:
    """Aggregate work of one kernel launch."""

    __slots__ = (
        "tensor_flops", "fma_flops", "pointwise_flops",
        "dram_read_bytes", "dram_write_bytes", "smem_bytes",
        "instructions", "blocks", "threads_per_block", "smem_footprint",
        "unique_read_bytes", "unique_write_bytes",
    )

    def __init__(self):
        self.tensor_flops = 0.0
        self.fma_flops = 0.0
        self.pointwise_flops = 0.0
        self.dram_read_bytes = 0.0
        self.dram_write_bytes = 0.0
        self.smem_bytes = 0.0
        self.instructions = 0.0
        self.blocks = 0
        self.threads_per_block = 0
        self.smem_footprint = 0
        # Unique global-memory footprints (the compulsory traffic);
        # re-reads beyond these are candidates for L2 service.
        self.unique_read_bytes = 0.0
        self.unique_write_bytes = 0.0

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def total_flops(self) -> float:
        return self.tensor_flops + self.fma_flops + self.pointwise_flops

    def __repr__(self):
        return (
            f"KernelCounts(tc={self.tensor_flops:.3g}F, "
            f"fma={self.fma_flops:.3g}F, pw={self.pointwise_flops:.3g}F, "
            f"dram={self.dram_bytes:.3g}B, smem={self.smem_bytes:.3g}B)"
        )


#: FLOPs of one Tensor Core mma instruction instance.
_MMA_FLOPS = {
    "mma.16816": 2 * 16 * 8 * 16,
    "mma.884": 2 * 8 * 8 * 4,
    # Hopper warpgroup mma: one instruction instance is the whole
    # 128-thread block's m64n64 tile at the format's K-depth.
    "wgmma.64.64.16.f16": 2 * 64 * 64 * 16,
    "wgmma.64.64.32.e4m3": 2 * 64 * 64 * 32,
}


def count_kernel(
    kernel: Kernel,
    arch,
    symbols: Optional[Dict[str, int]] = None,
) -> KernelCounts:
    """Analyse one kernel launch on ``arch``."""
    counts = KernelCounts()
    counts.blocks = kernel.grid_size()
    counts.threads_per_block = kernel.block_size()
    for alloc in kernel.allocations():
        if alloc.mem == SH:
            cosize = alloc.layout.cosize()
            counts.smem_footprint += cosize * alloc.dtype.bytes
    env = dict(symbols or {})
    _walk(kernel.body, 1.0, counts, kernel, arch, env)
    for field in ("tensor_flops", "fma_flops", "pointwise_flops",
                  "dram_read_bytes", "dram_write_bytes", "smem_bytes",
                  "instructions"):
        setattr(counts, field, getattr(counts, field) * counts.blocks)
    read_names, write_names = _param_usage(kernel)
    for param in kernel.params:
        size = param.layout.size()
        if not isinstance(size, int):
            continue
        nbytes = size * param.dtype.bytes
        if param.buffer in read_names:
            counts.unique_read_bytes += nbytes
        if param.buffer in write_names:
            counts.unique_write_bytes += nbytes
    return counts


def _param_usage(kernel: Kernel):
    """Which parameter buffers are read / written anywhere in the body."""
    reads = set()
    writes = set()
    for spec in kernel.specs():
        for t in spec.inputs:
            if t.mem == GL:
                reads.add(t.buffer)
        for t in spec.outputs:
            if t.mem == GL:
                writes.add(t.buffer)
    return reads, writes


def _walk(stmt: Stmt, trips: float, counts, kernel, arch, env) -> None:
    if isinstance(stmt, Block):
        for s in stmt:
            _walk(s, trips, counts, kernel, arch, env)
    elif isinstance(stmt, ForLoop):
        trip_count = _trip_count(stmt, env)
        for s in stmt.body:
            _walk(s, trips * trip_count, counts, kernel, arch, env)
    elif isinstance(stmt, If):
        # Predicated statements execute for a fraction of instances; we
        # conservatively count them fully (remainder guards are small).
        for s in stmt.then:
            _walk(s, trips, counts, kernel, arch, env)
        if stmt.orelse is not None:
            for s in stmt.orelse:
                _walk(s, trips, counts, kernel, arch, env)
    elif isinstance(stmt, SpecStmt):
        _count_spec(stmt.spec, trips, counts, kernel, arch, env)
    elif isinstance(stmt, (SyncThreads, SyncWarp, Comment)):
        pass


def _trip_count(stmt: ForLoop, env) -> float:
    try:
        lo = stmt.start.evaluate(env)
        hi = stmt.stop.evaluate(env)
        step = stmt.step.evaluate(env)
    except KeyError as exc:
        raise ValueError(
            f"loop bound depends on unbound symbol: {exc}"
        ) from exc
    if step <= 0:
        return 0.0
    return max(0.0, (hi - lo + step - 1) // step)


def _instances(spec: Spec, kernel: Kernel) -> float:
    """How many cooperating groups execute this spec per block."""
    group = spec.thread_group()
    if group is None or group.rank == 0:
        return kernel.block_size()  # per-thread
    if group.is_tiled():
        return group.layout.size()
    return 1.0


def _view_elements(tensor) -> int:
    total = tensor.layout.size() if tensor.rank else 1
    element = tensor.element
    while isinstance(element, Tile):
        total *= element.layout.size()
        element = element.element
    return total


def _charge_memory(counts, scale, read_tensors, written_tensors) -> None:
    """Charge GL/SH traffic for compute-spec operands.

    Mirrors the simulator's execution semantics (and therefore the
    profiler's measurements): inputs are read, outputs are written, and
    both directions of shared-memory traffic land in ``smem_bytes``.
    Register-file operands are free.
    """
    for t in read_tensors:
        nbytes = _view_elements(t) * t.dtype.bytes
        if t.mem == GL:
            counts.dram_read_bytes += scale * nbytes
        elif t.mem == SH:
            counts.smem_bytes += scale * nbytes
    for t in written_tensors:
        nbytes = _view_elements(t) * t.dtype.bytes
        if t.mem == GL:
            counts.dram_write_bytes += scale * nbytes
        elif t.mem == SH:
            counts.smem_bytes += scale * nbytes


def _count_spec(spec, trips, counts, kernel, arch, env) -> None:
    if isinstance(spec, Allocate):
        return
    if spec.body is not None:
        _walk(spec.body, trips, counts, kernel, arch, env)
        return
    instances = _instances(spec, kernel)
    scale = trips * instances
    counts.instructions += scale
    atomic = match_atomic(spec, arch.atomics)
    if isinstance(spec, Move):
        src, dst = spec.src, spec.dst
        if atomic.name.startswith("ldmatrix"):
            num = int(atomic.name.split(".x")[1][0])
            moved = 32 * num * 2 * src.dtype.bytes  # 32 lanes x num x 2 vals
            counts.smem_bytes += scale * moved
            return
        if atomic.name.startswith("tma"):
            # TMA bulk tensor copies bypass the register file and the
            # shared-memory bank path; the profiler accounts them in
            # dedicated bulk counters, so the model charges only the
            # global side of the copy.
            counts.dram_read_bytes += \
                scale * _view_elements(src) * src.dtype.bytes
            return
        elements = _view_elements(src)
        nbytes = elements * src.dtype.bytes
        out_bytes = _view_elements(dst) * dst.dtype.bytes
        if src.mem == GL:
            counts.dram_read_bytes += scale * nbytes
        if dst.mem == GL:
            counts.dram_write_bytes += scale * out_bytes
        if src.mem == SH:
            counts.smem_bytes += scale * nbytes
        if dst.mem == SH:
            counts.smem_bytes += scale * out_bytes
    elif isinstance(spec, MatMul):
        flops = _MMA_FLOPS.get(atomic.name)
        if flops is not None:
            counts.tensor_flops += scale * flops
        else:
            counts.fma_flops += scale * 2 * _view_elements(spec.c)
        # Memory operands of fma-style MatMuls: the naive Figure 8 GEMM
        # reads A/B and accumulates C straight from global memory (the
        # accumulator is a read-modify-write).
        _charge_memory(counts, scale, spec.inputs, (spec.c,))
        if spec.c.mem == GL:
            counts.dram_read_bytes += \
                scale * _view_elements(spec.c) * spec.c.dtype.bytes
        elif spec.c.mem == SH:
            counts.smem_bytes += \
                scale * _view_elements(spec.c) * spec.c.dtype.bytes
    elif isinstance(spec, (UnaryPointwise, BinaryPointwise)):
        counts.pointwise_flops += scale * _view_elements(spec.outputs[0])
        _charge_memory(counts, scale, spec.inputs, spec.outputs)
    elif isinstance(spec, Reduction):
        counts.pointwise_flops += scale * _view_elements(spec.inputs[0])
        _charge_memory(counts, scale, spec.inputs, spec.outputs)
    elif isinstance(spec, Shfl):
        counts.instructions += scale
    elif isinstance(spec, Init):
        counts.pointwise_flops += scale * _view_elements(spec.outputs[0])
        _charge_memory(counts, scale, (), spec.outputs)
    else:
        # Generic leaf specs matched by label (e.g. the Hopper
        # sparse24.decompress expansion): charge their operand traffic
        # the way the simulator's executors do.
        _charge_memory(counts, scale, spec.inputs, spec.outputs)
