"""Measured-vs-modelled calibration of the analytical performance model.

The paper validates its kernels against Nsight Compute measurements;
this repo's substitute is the simulator profiler
(:mod:`repro.sim.profiler`).  ``calibrate()`` runs every shipped kernel
family at a simulation-friendly shape with ``profile=True`` and compares
the measured counters against :func:`repro.perfmodel.counts.count_kernel`
predictions and the static :func:`repro.perfmodel.model.
bank_conflict_degree`; the result is the calibration report behind
``python -m repro.eval profile``, and the drift test in
``tests/perfmodel/test_calibrate.py`` fails when the analytical model
wanders beyond the documented tolerances.

Documented tolerances (relative drift ``|measured/modelled - 1|``):

* ``DEFAULT_TOLERANCE`` (10%) — global read/write bytes and shared
  bytes.  The count model walks the same IR the simulator executes, so
  on the calibration shapes (chosen so staging has no remainder guards)
  these normally agree *exactly*; the margin absorbs future
  predication-splitting changes.
* ``FMHA_SMEM_TOLERANCE`` (25%) — the fused-attention kernel's shared
  traffic.  The count model charges guarded bodies fully and models
  ``ldmatrix`` with its nominal 32-lane footprint, both conservative
  for FMHA's chunked softmax, so the model over-predicts by ~15% there.
* Bank-conflict degree uses ``DEFAULT_TOLERANCE`` against the static
  8x8-fragment model of :func:`bank_conflict_degree` on the kernels it
  covers (2-D fp16 shared staging tiles read whole by ``ldmatrix``).
  The row is skipped for FMHA: its K/V chunks are read through guarded
  per-chunk views whose row strides differ from the backing allocation,
  so the static worst-buffer model over-predicts there (8 modelled vs 6
  measured) by construction, not by drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..arch import Architecture, architecture
from .counts import count_kernel
from .model import bank_conflict_degree

#: Relative drift allowed between measured and modelled counters.
DEFAULT_TOLERANCE = 0.10
#: The fused-attention kernel's shared traffic is modelled
#: conservatively (guarded bodies charged fully); see module docstring.
FMHA_SMEM_TOLERANCE = 0.25


@dataclass
class CalibrationRow:
    """One measured-vs-modelled counter comparison."""

    kernel: str
    counter: str
    modelled: float
    measured: float
    tolerance: float

    @property
    def drift(self) -> float:
        """Relative drift ``|measured/modelled - 1|`` (0 = exact)."""
        if self.modelled == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return abs(self.measured / self.modelled - 1.0)

    @property
    def passed(self) -> bool:
        return self.drift <= self.tolerance

    @property
    def status(self) -> str:
        return "ok" if self.passed else "DRIFT"

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel, "counter": self.counter,
            "modelled": self.modelled, "measured": self.measured,
            "tolerance": self.tolerance,
            "drift": None if self.drift == float("inf") else
            round(self.drift, 4),
            "passed": self.passed,
        }


@dataclass
class CalibrationReport:
    """All rows of one calibration run."""

    arch: str
    rows: List[CalibrationRow] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(row.passed for row in self.rows)

    def failures(self) -> List[CalibrationRow]:
        return [row for row in self.rows if not row.passed]

    def worst_drift(self) -> float:
        return max((row.drift for row in self.rows), default=0.0)

    def as_dict(self) -> dict:
        return {
            "arch": self.arch,
            "passed": self.passed,
            "rows": [row.as_dict() for row in self.rows],
        }

    def format_table(self) -> str:
        header = (f"{'kernel':<22} {'counter':<22} {'modelled':>12} "
                  f"{'measured':>12} {'drift':>8} {'tol':>6} {'':>6}")
        lines = [
            f"perfmodel calibration on {self.arch} "
            f"(measured by repro.sim.profiler)",
            header, "-" * len(header),
        ]
        for row in self.rows:
            drift = ("inf" if row.drift == float("inf")
                     else f"{row.drift * 100:.1f}%")
            lines.append(
                f"{row.kernel:<22} {row.counter:<22} {row.modelled:>12.0f} "
                f"{row.measured:>12.0f} {drift:>8} "
                f"{row.tolerance * 100:>5.0f}% {row.status:>6}"
            )
        lines.append("-" * len(header))
        verdict = "all counters within tolerance" if self.passed else \
            f"{len(self.failures())} counter(s) drifted beyond tolerance"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def _bindings(kernel, seed: int = 0) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        p.name: (rng.standard_normal(p.layout.size()) * 0.25)
        .astype(p.dtype.np_dtype)
        for p in kernel.params
    }


def calibration_cases() -> List[Tuple[str, "KernelConfig", float, bool]]:
    """The shipped-family calibration set at simulation-friendly shapes.

    Returns ``(name, config, smem_tolerance, check_conflict_degree)``
    tuples; shapes are chosen so the staging loops have no remainder
    guards (the count model charges guarded bodies fully, see module
    docstring).  ``check_conflict_degree`` is False where the static
    8x8-fragment model's assumptions do not hold (FMHA, see module
    docstring).
    """
    from ..kernels import (
        FmhaConfig, GemmConfig, LayernormConfig, LstmConfig, MlpConfig,
        NaiveGemmConfig, SoftmaxConfig,
    )

    return [
        ("gemm_naive",
         NaiveGemmConfig(32, 32, 32, (2, 2), (4, 4)),
         DEFAULT_TOLERANCE, True),
        ("gemm_tc_ampere",
         GemmConfig(32, 32, 64, (32, 32, 32), (1, 1), name="cal_gemm_tc"),
         DEFAULT_TOLERANCE, True),
        ("gemm_tc_swizzled",
         GemmConfig(32, 32, 64, (32, 32, 32), (1, 1), swizzled=True,
                    name="cal_gemm_tc_swz"), DEFAULT_TOLERANCE, True),
        ("layernorm",
         LayernormConfig(8, 64, 4), DEFAULT_TOLERANCE, True),
        ("softmax",
         SoftmaxConfig(128, 32), DEFAULT_TOLERANCE, True),
        ("mlp",
         MlpConfig(64, 64, 2, block_rows=32, warp_grid=(1, 1)),
         DEFAULT_TOLERANCE, True),
        ("lstm",
         LstmConfig(32, 32, 32, (32, 32, 32), (1, 1)),
         DEFAULT_TOLERANCE, True),
        ("fmha",
         FmhaConfig(2, 64, 32, kv_chunk=32), FMHA_SMEM_TOLERANCE, False),
    ]


def calibrate(
    arch: "Architecture | str" = "ampere",
    cases: Optional[List[Tuple[str, "KernelConfig", float, bool]]] = None,
    seed: int = 0,
) -> CalibrationReport:
    """Profile every calibration kernel and compare against the model."""
    from ..kernels import build
    from ..sim import Simulator

    if isinstance(arch, str):
        arch = architecture(arch)
    report = CalibrationReport(arch=arch.name)
    for name, cfg, smem_tol, check_conflicts in (
            cases if cases is not None else calibration_cases()):
        kernel = build(cfg)
        result = Simulator(arch).run(kernel, _bindings(kernel, seed),
                                     profile=True)
        profile = result.profile
        counts = count_kernel(kernel, arch)
        report.rows.append(CalibrationRow(
            name, "global_load_bytes",
            counts.dram_read_bytes, profile.global_load_bytes,
            DEFAULT_TOLERANCE,
        ))
        report.rows.append(CalibrationRow(
            name, "global_store_bytes",
            counts.dram_write_bytes, profile.global_store_bytes,
            DEFAULT_TOLERANCE,
        ))
        if counts.smem_bytes or profile.shared_bytes:
            report.rows.append(CalibrationRow(
                name, "shared_bytes",
                counts.smem_bytes, profile.shared_bytes, smem_tol,
            ))
        static_degree = bank_conflict_degree(kernel)
        if check_conflicts and (static_degree > 1.0
                                or profile.shared_wavefronts):
            # The static model reports the worst buffer's degree, so
            # compare against the worst measured per-spec degree.
            report.rows.append(CalibrationRow(
                name, "ldmatrix_conflict_degree",
                static_degree, profile.worst_conflict_degree("ldmatrix"),
                DEFAULT_TOLERANCE,
            ))
    return report


# -- cost-model refinement -----------------------------------------------
#
# Beyond pass/fail drift checking, the same measured-vs-modelled pairs
# can *refine* the model: fit scale coefficients mapping the count
# model's predictions onto the profiler's measurements and cost with
# the corrected quantities.  The tuner feeds the fitted oracle back
# into search (``tune(..., oracle=FittedOracle(...))``), closing the
# paper's "automated search" loop with a measurement-informed ranking.


@dataclass(frozen=True)
class FittedCoefficients:
    """Scale factors regressed from calibration measurements.

    Each coefficient is a least-squares-through-origin slope of
    measured against modelled values over the calibration kernels
    (slope 1.0 = the analytical model is exact):

    * ``dram_scale`` — measured global bytes per modelled DRAM byte;
    * ``smem_scale`` — measured shared bytes per modelled shared byte;
    * ``conflict_penalty`` — measured excess conflict degree per
      modelled excess degree (the static 8x8-fragment model's
      ``degree - 1`` against the profiler's worst measured degree);
    * ``issue_scale`` — profiler-counted instruction issues per
      modelled instruction (captures predication/vectorization slack
      the count model charges nominally).
    """

    dram_scale: float = 1.0
    smem_scale: float = 1.0
    conflict_penalty: float = 1.0
    issue_scale: float = 1.0
    #: Calibration kernels the fit consumed.
    samples: int = 0

    def as_dict(self) -> dict:
        return {
            "dram_scale": round(self.dram_scale, 6),
            "smem_scale": round(self.smem_scale, 6),
            "conflict_penalty": round(self.conflict_penalty, 6),
            "issue_scale": round(self.issue_scale, 6),
            "samples": self.samples,
        }


def _fit_through_origin(pairs: List[Tuple[float, float]],
                        default: float = 1.0) -> float:
    """Least-squares slope of ``y = c * x`` through the origin."""
    num = sum(x * y for x, y in pairs)
    den = sum(x * x for x, _ in pairs)
    return num / den if den > 0.0 else default


def fit_coefficients(
    arch: "Architecture | str" = "ampere",
    cases: Optional[List[Tuple[str, "KernelConfig", float, bool]]] = None,
    seed: int = 0,
) -> FittedCoefficients:
    """Regress the refinement coefficients from profiled calibration runs.

    Runs the same kernels :func:`calibrate` drifts against, but instead
    of judging the model it fits the correction: every profiled counter
    (global bytes, shared bytes, conflict degree, instruction issues)
    is paired with the analytical prediction and the per-resource
    scale is the least-squares slope through the origin.
    """
    from ..kernels import build
    from ..sim import Simulator

    if isinstance(arch, str):
        arch = architecture(arch)
    dram: List[Tuple[float, float]] = []
    smem: List[Tuple[float, float]] = []
    conflict: List[Tuple[float, float]] = []
    issues: List[Tuple[float, float]] = []
    sampled = 0
    for name, cfg, _smem_tol, check_conflicts in (
            cases if cases is not None else calibration_cases()):
        kernel = build(cfg)
        result = Simulator(arch).run(kernel, _bindings(kernel, seed),
                                     profile=True)
        profile = result.profile
        counts = count_kernel(kernel, arch)
        sampled += 1
        dram.append((counts.dram_read_bytes + counts.dram_write_bytes,
                     float(profile.global_load_bytes
                           + profile.global_store_bytes)))
        if counts.smem_bytes or profile.shared_bytes:
            smem.append((counts.smem_bytes, float(profile.shared_bytes)))
        static_degree = bank_conflict_degree(kernel)
        if check_conflicts and static_degree > 1.0:
            measured = profile.worst_conflict_degree("ldmatrix")
            conflict.append((static_degree - 1.0, max(0.0, measured - 1.0)))
        if counts.instructions and profile.issues(""):
            issues.append((counts.instructions, float(profile.issues(""))))
    return FittedCoefficients(
        dram_scale=_fit_through_origin(dram),
        smem_scale=_fit_through_origin(smem),
        conflict_penalty=_fit_through_origin(conflict),
        issue_scale=_fit_through_origin(issues),
        samples=sampled,
    )


class FittedOracle:
    """A tuner oracle costing with calibration-fitted coefficients.

    Drop-in for :func:`repro.tuner.search.perfmodel_oracle`: callable
    as ``oracle(kernel, arch) -> CostBreakdown``.  The roofline runs
    with the DRAM/shared-memory components scaled by the fitted
    byte-count corrections, the bank-conflict penalty replaced by the
    fitted excess-degree slope, and an additive issue-overhead term —
    fitted instruction issues charged at the architecture's warp issue
    rate — that separates candidates the pure bandwidth roofline ties.
    Holds only plain floats, so it pickles to fleet workers.
    """

    def __init__(self, coefficients: FittedCoefficients):
        self.coefficients = coefficients

    #: FP32 FLOPs one warp-level FMA issue retires (32 lanes x mul+add):
    #: converts the architecture's FMA peak into a warp issue rate.
    _FLOPS_PER_ISSUE = 64.0

    def issue_seconds(self, instructions: float, arch: Architecture) -> float:
        """Seconds the fitted issue stream needs at the warp issue rate."""
        issue_rate = arch.fp32_tflops * 1e12 / self._FLOPS_PER_ISSUE
        return instructions * self.coefficients.issue_scale / issue_rate

    def __call__(self, kernel, arch: Architecture):
        from .model import (
            CostBreakdown, Efficiency, LIBRARY_CLASS, KernelEstimate,
            PerfModel, bank_conflict_degree,
        )

        c = self.coefficients
        counts = count_kernel(kernel, arch)
        static = bank_conflict_degree(kernel)
        fitted_degree = 1.0 + max(0.0, c.conflict_penalty) * (static - 1.0)
        base = LIBRARY_CLASS
        # Scaling measured = c * modelled bytes is equivalent to
        # dividing the achievable-efficiency envelope by c.
        eff = Efficiency(
            tensor=base.tensor, fma=base.fma,
            dram=base.dram / max(c.dram_scale, 1e-9),
            smem=base.smem / max(c.smem_scale, 1e-9),
        )
        est = PerfModel(arch).estimate_counts(
            counts, kernel.name, efficiency=eff,
            bank_conflict_factor=fitted_degree,
        )
        seconds = est.seconds + self.issue_seconds(counts.instructions, arch)
        fitted = KernelEstimate(
            kernel.name, seconds, est.compute_seconds, est.dram_seconds,
            est.smem_seconds, est.launch_seconds, counts, arch,
        )
        return CostBreakdown(
            name=kernel.name,
            time_seconds=fitted.total_seconds,
            kernel_seconds=fitted.seconds,
            flops=counts.total_flops,
            tensor_flops=counts.tensor_flops,
            dram_bytes=counts.dram_bytes,
            smem_bytes=counts.smem_bytes,
            smem_bank_conflicts=fitted_degree,
            compute_fraction=fitted.compute_fraction,
            memory_fraction=fitted.memory_fraction,
            estimate=fitted,
            counts=counts,
        )


def rank_agreement(ranking_a: List[str], ranking_b: List[str]) -> float:
    """Pairwise order agreement between two rankings of the same items.

    The fraction of unordered label pairs both rankings order the same
    way (a Kendall-tau-style statistic mapped to ``[0, 1]``; 1.0 =
    identical order, 0.5 = uncorrelated).  Only labels present in both
    rankings participate; fewer than two shared labels yield 1.0.
    """
    common = [label for label in ranking_a if label in set(ranking_b)]
    pos_b = {label: i for i, label in enumerate(ranking_b)}
    total = 0
    agree = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            total += 1
            if pos_b[common[i]] < pos_b[common[j]]:
                agree += 1
    return agree / total if total else 1.0


__all__ = [
    "DEFAULT_TOLERANCE", "FMHA_SMEM_TOLERANCE",
    "CalibrationRow", "CalibrationReport", "FittedCoefficients",
    "FittedOracle", "calibrate", "calibration_cases", "fit_coefficients",
    "rank_agreement",
]
