"""Analytical GPU performance model (hardware substitute)."""

from .calibrate import (
    CalibrationReport, CalibrationRow, FittedCoefficients, FittedOracle,
    calibrate, calibration_cases, fit_coefficients, rank_agreement,
)
from .counts import KernelCounts, count_kernel
from .model import (
    CostBreakdown, Efficiency, KernelEstimate, LIBRARY_CLASS, PerfModel,
    SCALAR_FRAGMENT, bank_conflict_degree, estimate_kernel, fused_time,
    sequential_time,
)

__all__ = [
    "CalibrationReport", "CalibrationRow", "FittedCoefficients",
    "FittedOracle", "calibrate", "calibration_cases", "fit_coefficients",
    "rank_agreement",
    "KernelCounts", "count_kernel", "CostBreakdown", "Efficiency",
    "KernelEstimate", "LIBRARY_CLASS", "PerfModel", "SCALAR_FRAGMENT",
    "bank_conflict_degree", "estimate_kernel", "fused_time",
    "sequential_time",
]
