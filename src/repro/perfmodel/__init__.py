"""Analytical GPU performance model (hardware substitute)."""

from .counts import KernelCounts, count_kernel
from .model import (
    Efficiency, KernelEstimate, LIBRARY_CLASS, PerfModel, SCALAR_FRAGMENT,
    fused_time, sequential_time,
)

__all__ = [
    "KernelCounts", "count_kernel", "Efficiency", "KernelEstimate",
    "LIBRARY_CLASS", "PerfModel", "SCALAR_FRAGMENT", "fused_time",
    "sequential_time",
]
