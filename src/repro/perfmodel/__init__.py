"""Analytical GPU performance model (hardware substitute)."""

from .calibrate import (
    CalibrationReport, CalibrationRow, calibrate, calibration_cases,
)
from .counts import KernelCounts, count_kernel
from .model import (
    CostBreakdown, Efficiency, KernelEstimate, LIBRARY_CLASS, PerfModel,
    SCALAR_FRAGMENT, bank_conflict_degree, estimate_kernel, fused_time,
    sequential_time,
)

__all__ = [
    "CalibrationReport", "CalibrationRow", "calibrate",
    "calibration_cases",
    "KernelCounts", "count_kernel", "CostBreakdown", "Efficiency",
    "KernelEstimate", "LIBRARY_CLASS", "PerfModel", "SCALAR_FRAGMENT",
    "bank_conflict_degree", "estimate_kernel", "fused_time",
    "sequential_time",
]
