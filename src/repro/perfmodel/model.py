"""Analytical kernel-time model (hardware substitute; see DESIGN.md).

A classic roofline with launch overhead and wave quantisation: the
kernel time is the maximum of its Tensor Core, FMA, DRAM and
shared-memory components, scaled by per-resource achievable-efficiency
envelopes and the SM occupancy of the launch.  It reproduces the *shape*
claims of the paper's evaluation — who wins and by what factor — rather
than absolute nanoseconds.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..arch.gpu import Architecture
from ..specs.kernel import Kernel
from .counts import KernelCounts, count_kernel


class Efficiency:
    """Achievable fractions of theoretical peak per resource.

    Defaults model a well-written kernel (library-class pipelines hit
    ~90% of Tensor Core peak in the paper's Figure 9 profiles).
    """

    __slots__ = ("tensor", "fma", "dram", "smem")

    def __init__(self, tensor=0.90, fma=0.85, dram=0.82, smem=0.85):
        self.tensor = tensor
        self.fma = fma
        self.dram = dram
        self.smem = smem


LIBRARY_CLASS = Efficiency()
#: Scalar-fragment pipelines lose shared-memory efficiency (the ~17%
#: ldmatrix ablation of paper Section 2).
SCALAR_FRAGMENT = Efficiency(tensor=0.90, fma=0.85, dram=0.82, smem=0.29)


class KernelEstimate:
    """The modelled execution profile of one kernel launch."""

    __slots__ = (
        "name", "seconds", "compute_seconds", "dram_seconds",
        "smem_seconds", "launch_seconds", "counts", "arch",
        "compute_fraction", "memory_fraction",
    )

    def __init__(self, name, seconds, compute_seconds, dram_seconds,
                 smem_seconds, launch_seconds, counts, arch):
        self.name = name
        self.seconds = seconds
        self.compute_seconds = compute_seconds
        self.dram_seconds = dram_seconds
        self.smem_seconds = smem_seconds
        self.launch_seconds = launch_seconds
        self.counts = counts
        self.arch = arch
        self.compute_fraction = (
            compute_seconds / seconds if seconds else 0.0
        )
        self.memory_fraction = dram_seconds / seconds if seconds else 0.0

    @property
    def total_seconds(self) -> float:
        """Kernel time including launch overhead."""
        return self.seconds + self.launch_seconds

    def tflops(self) -> float:
        return self.counts.total_flops / self.seconds / 1e12 if self.seconds else 0.0

    def __repr__(self):
        return (
            f"KernelEstimate({self.name}: {self.seconds * 1e6:.1f}us, "
            f"compute={self.compute_fraction:.0%}, "
            f"mem={self.memory_fraction:.0%})"
        )


class PerfModel:
    """Estimates kernel times on one architecture."""

    def __init__(self, arch: Architecture,
                 efficiency: Optional[Efficiency] = None):
        self.arch = arch
        self.efficiency = efficiency or LIBRARY_CLASS

    def estimate_kernel(
        self,
        kernel: Kernel,
        symbols: Optional[Dict[str, int]] = None,
        efficiency: Optional[Efficiency] = None,
        bank_conflict_factor: float = 1.0,
    ) -> KernelEstimate:
        counts = count_kernel(kernel, self.arch, symbols)
        return self.estimate_counts(
            counts, kernel.name, efficiency=efficiency,
            bank_conflict_factor=bank_conflict_factor,
        )

    def estimate_counts(
        self,
        counts: KernelCounts,
        name: str = "kernel",
        efficiency: Optional[Efficiency] = None,
        bank_conflict_factor: float = 1.0,
    ) -> KernelEstimate:
        arch = self.arch
        eff = efficiency or self.efficiency
        occupancy = self._occupancy(counts)
        t_tensor = counts.tensor_flops / (
            arch.tensor_fp16_tflops * 1e12 * eff.tensor
        )
        t_fma = counts.fma_flops / (arch.fp32_tflops * 1e12 * eff.fma)
        t_pw = counts.pointwise_flops / (arch.fp32_tflops * 1e12 * eff.fma)
        t_compute = (t_tensor + t_fma + t_pw) / occupancy
        dram_bytes = self._effective_dram(counts)
        t_dram = dram_bytes / (arch.dram_gbps * 1e9 * eff.dram)
        t_smem = counts.smem_bytes * bank_conflict_factor / (
            arch.smem_gbps * 1e9 * eff.smem
        ) / occupancy
        seconds = max(t_compute, t_dram, t_smem)
        return KernelEstimate(
            name, seconds, t_compute, t_dram, t_smem,
            arch.launch_overhead_us * 1e-6, counts, arch,
        )

    #: Concurrent blocks of one wave share operand panels through the
    #: L2 cache; re-reads beyond the unique footprint are served at an
    #: effective reuse factor of roughly sqrt(#SMs) (square wave tiles).
    def _effective_dram(self, counts: KernelCounts) -> float:
        reuse = max(1.0, self.arch.num_sms ** 0.5)

        def effective(raw: float, unique: float) -> float:
            if unique <= 0.0 or raw <= unique:
                return raw
            return max(unique, raw / reuse)

        return (
            effective(counts.dram_read_bytes, counts.unique_read_bytes)
            + effective(counts.dram_write_bytes, counts.unique_write_bytes)
        )

    def _occupancy(self, counts: KernelCounts) -> float:
        """Wave quantisation: partial last waves waste SMs."""
        if counts.blocks == 0:
            return 1.0
        waves = -(-counts.blocks // self.arch.num_sms)
        return counts.blocks / (waves * self.arch.num_sms)


def fused_time(estimates) -> float:
    """Total time of kernels fused into one launch: one launch overhead."""
    estimates = list(estimates)
    if not estimates:
        return 0.0
    return sum(e.seconds for e in estimates) + estimates[0].launch_seconds


def sequential_time(estimates) -> float:
    """Cumulative time of separate kernel launches."""
    return sum(e.total_seconds for e in estimates)
