"""Analytical kernel-time model (hardware substitute; see DESIGN.md).

A classic roofline with launch overhead and wave quantisation: the
kernel time is the maximum of its Tensor Core, FMA, DRAM and
shared-memory components, scaled by per-resource achievable-efficiency
envelopes and the SM occupancy of the launch.  It reproduces the *shape*
claims of the paper's evaluation — who wins and by what factor — rather
than absolute nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..arch.gpu import Architecture
from ..specs.kernel import Kernel
from ..tensor.memspace import SH
from .counts import KernelCounts, count_kernel


class Efficiency:
    """Achievable fractions of theoretical peak per resource.

    Defaults model a well-written kernel (library-class pipelines hit
    ~90% of Tensor Core peak in the paper's Figure 9 profiles).
    """

    __slots__ = ("tensor", "fma", "dram", "smem")

    def __init__(self, tensor=0.90, fma=0.85, dram=0.82, smem=0.85):
        self.tensor = tensor
        self.fma = fma
        self.dram = dram
        self.smem = smem


LIBRARY_CLASS = Efficiency()
#: Scalar-fragment pipelines lose shared-memory efficiency (the ~17%
#: ldmatrix ablation of paper Section 2).
SCALAR_FRAGMENT = Efficiency(tensor=0.90, fma=0.85, dram=0.82, smem=0.29)


class KernelEstimate:
    """The modelled execution profile of one kernel launch."""

    __slots__ = (
        "name", "seconds", "compute_seconds", "dram_seconds",
        "smem_seconds", "launch_seconds", "counts", "arch",
        "compute_fraction", "memory_fraction",
    )

    def __init__(self, name, seconds, compute_seconds, dram_seconds,
                 smem_seconds, launch_seconds, counts, arch):
        self.name = name
        self.seconds = seconds
        self.compute_seconds = compute_seconds
        self.dram_seconds = dram_seconds
        self.smem_seconds = smem_seconds
        self.launch_seconds = launch_seconds
        self.counts = counts
        self.arch = arch
        self.compute_fraction = (
            compute_seconds / seconds if seconds else 0.0
        )
        self.memory_fraction = dram_seconds / seconds if seconds else 0.0

    @property
    def total_seconds(self) -> float:
        """Kernel time including launch overhead."""
        return self.seconds + self.launch_seconds

    def tflops(self) -> float:
        return self.counts.total_flops / self.seconds / 1e12 if self.seconds else 0.0

    def __repr__(self):
        return (
            f"KernelEstimate({self.name}: {self.seconds * 1e6:.1f}us, "
            f"compute={self.compute_fraction:.0%}, "
            f"mem={self.memory_fraction:.0%})"
        )


class PerfModel:
    """Estimates kernel times on one architecture."""

    def __init__(self, arch: Architecture,
                 efficiency: Optional[Efficiency] = None):
        self.arch = arch
        self.efficiency = efficiency or LIBRARY_CLASS

    def estimate_kernel(
        self,
        kernel: Kernel,
        symbols: Optional[Dict[str, int]] = None,
        efficiency: Optional[Efficiency] = None,
        bank_conflict_factor: float = 1.0,
    ) -> KernelEstimate:
        counts = count_kernel(kernel, self.arch, symbols)
        return self.estimate_counts(
            counts, kernel.name, efficiency=efficiency,
            bank_conflict_factor=bank_conflict_factor,
        )

    def estimate_counts(
        self,
        counts: KernelCounts,
        name: str = "kernel",
        efficiency: Optional[Efficiency] = None,
        bank_conflict_factor: float = 1.0,
    ) -> KernelEstimate:
        arch = self.arch
        eff = efficiency or self.efficiency
        occupancy = self._occupancy(counts)
        t_tensor = counts.tensor_flops / (
            arch.tensor_fp16_tflops * 1e12 * eff.tensor
        )
        t_fma = counts.fma_flops / (arch.fp32_tflops * 1e12 * eff.fma)
        t_pw = counts.pointwise_flops / (arch.fp32_tflops * 1e12 * eff.fma)
        t_compute = (t_tensor + t_fma + t_pw) / occupancy
        dram_bytes = self._effective_dram(counts)
        t_dram = dram_bytes / (arch.dram_gbps * 1e9 * eff.dram)
        t_smem = counts.smem_bytes * bank_conflict_factor / (
            arch.smem_gbps * 1e9 * eff.smem
        ) / occupancy
        seconds = max(t_compute, t_dram, t_smem)
        return KernelEstimate(
            name, seconds, t_compute, t_dram, t_smem,
            arch.launch_overhead_us * 1e-6, counts, arch,
        )

    #: Concurrent blocks of one wave share operand panels through the
    #: L2 cache; re-reads beyond the unique footprint are served at an
    #: effective reuse factor of roughly sqrt(#SMs) (square wave tiles).
    def _effective_dram(self, counts: KernelCounts) -> float:
        reuse = max(1.0, self.arch.num_sms ** 0.5)

        def effective(raw: float, unique: float) -> float:
            if unique <= 0.0 or raw <= unique:
                return raw
            return max(unique, raw / reuse)

        return (
            effective(counts.dram_read_bytes, counts.unique_read_bytes)
            + effective(counts.dram_write_bytes, counts.unique_write_bytes)
        )

    def _occupancy(self, counts: KernelCounts) -> float:
        """Wave quantisation: partial last waves waste SMs."""
        if counts.blocks == 0:
            return 1.0
        waves = -(-counts.blocks // self.arch.num_sms)
        return counts.blocks / (waves * self.arch.num_sms)


@dataclass
class CostBreakdown:
    """The single cost record shared by the tuner and the figure benches.

    One call to :func:`estimate_kernel` assembles everything a consumer
    needs — modelled time, FLOP/byte attribution and the static
    shared-memory bank-conflict degree — so callers stop re-deriving
    costs from :mod:`repro.perfmodel.counts` internals in divergent
    ways.
    """

    name: str
    #: Roofline time of one launch including launch overhead (seconds).
    time_seconds: float
    #: Roofline time excluding launch overhead (seconds).
    kernel_seconds: float
    flops: float
    tensor_flops: float
    dram_bytes: float
    smem_bytes: float
    #: Modelled transactions-per-access degree of the kernel's staging
    #: buffers under warp-collective 8x8 fragment reads (1.0 = free).
    smem_bank_conflicts: float
    compute_fraction: float
    memory_fraction: float
    estimate: KernelEstimate
    counts: KernelCounts

    def tflops(self) -> float:
        if not self.kernel_seconds:
            return 0.0
        return self.flops / self.kernel_seconds / 1e12

    def __repr__(self):
        return (
            f"CostBreakdown({self.name}: {self.time_seconds * 1e6:.1f}us, "
            f"{self.tflops():.0f} TFLOP/s, "
            f"conflicts={self.smem_bank_conflicts:.1f}x)"
        )


def bank_conflict_degree(kernel: Kernel) -> float:
    """Static conflict degree of a kernel's shared-memory operand tiles.

    Models the canonical warp-collective fragment read — eight 16-byte
    rows of an 8x8 sub-tile (what ``ldmatrix`` issues) — against each
    2-D shared staging buffer, swizzle applied.  Returns the worst
    degree over all such buffers; kernels without 2-D shared tiles are
    conflict-free under this model.
    """
    from ..sim.banks import ldmatrix_conflict_degree

    degree = 1.0
    for alloc in kernel.allocations():
        if alloc.mem != SH or alloc.rank != 2:
            continue
        rows, cols = alloc.dim(0), alloc.dim(1)
        if not isinstance(rows, int) or not isinstance(cols, int):
            continue
        if rows < 8 or cols < 8 or alloc.dtype.bytes != 2:
            continue
        degree = max(degree, float(ldmatrix_conflict_degree(alloc)))
    return degree


def estimate_kernel(
    kernel: Kernel,
    arch: Architecture,
    *,
    efficiency: Optional[Efficiency] = None,
    symbols: Optional[Dict[str, int]] = None,
    count_arch: Optional[Architecture] = None,
    include_bank_conflicts: bool = False,
) -> CostBreakdown:
    """The perfmodel's single kernel-costing entry point.

    ``count_arch`` counts the IR against a different atomic table than
    the one used for costing (Figures 11/12 count the SM86 kernel and
    cost it on each architecture's roofline).  With
    ``include_bank_conflicts=True`` the static conflict degree scales
    the shared-memory roofline component — the fidelity the tuner's
    oracle needs to rank swizzled against unswizzled candidates; the
    degree is reported in the breakdown either way.
    """
    counts = count_kernel(kernel, count_arch or arch, symbols)
    conflicts = bank_conflict_degree(kernel)
    model = PerfModel(arch)
    est = model.estimate_counts(
        counts, kernel.name, efficiency=efficiency,
        bank_conflict_factor=conflicts if include_bank_conflicts else 1.0,
    )
    return CostBreakdown(
        name=kernel.name,
        time_seconds=est.total_seconds,
        kernel_seconds=est.seconds,
        flops=counts.total_flops,
        tensor_flops=counts.tensor_flops,
        dram_bytes=counts.dram_bytes,
        smem_bytes=counts.smem_bytes,
        smem_bank_conflicts=conflicts,
        compute_fraction=est.compute_fraction,
        memory_fraction=est.memory_fraction,
        estimate=est,
        counts=counts,
    )


def fused_time(estimates) -> float:
    """Total time of kernels fused into one launch: one launch overhead."""
    estimates = list(estimates)
    if not estimates:
        return 0.0
    return sum(e.seconds for e in estimates) + estimates[0].launch_seconds


def sequential_time(estimates) -> float:
    """Cumulative time of separate kernel launches."""
    return sum(e.total_seconds for e in estimates)
