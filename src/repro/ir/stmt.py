"""Statements forming the bodies of spec decompositions.

Graphene provides "basic control flow statements, including loops and
if-statements, and other expressions not operating on tensors like
synchronizations or barriers" (paper Section 5.4).  A decomposition body
is a :class:`Block` of statements; nested specs appear via
:class:`SpecStmt`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..pickling import PickleBySlots
from .expr import IntExpr, Var, as_expr


class Stmt(PickleBySlots):
    """Base class for body statements."""

    __slots__ = ()

    def children(self) -> Tuple["Stmt", ...]:
        return ()


class Block(Stmt):
    """An ordered sequence of statements."""

    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt] = ()):
        object.__setattr__(self, "stmts", tuple(stmts))

    def __setattr__(self, *a):
        raise AttributeError("Block is immutable")

    def children(self):
        return self.stmts

    def __iter__(self):
        return iter(self.stmts)

    def __len__(self):
        return len(self.stmts)


class ForLoop(Stmt):
    """``for (var = start; var < stop; var += step)`` over the body.

    ``unroll`` requests ``#pragma unroll`` in generated CUDA.
    """

    __slots__ = ("var", "start", "stop", "step", "body", "unroll")

    def __init__(
        self,
        var: Var,
        stop,
        body: Block,
        start=0,
        step=1,
        unroll: bool = True,
    ):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "start", as_expr(start))
        object.__setattr__(self, "stop", as_expr(stop))
        object.__setattr__(self, "step", as_expr(step))
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "unroll", unroll)

    def __setattr__(self, *a):
        raise AttributeError("ForLoop is immutable")

    def children(self):
        return (self.body,)


class If(Stmt):
    """Conditional execution guarded by ``all(lhs < rhs)`` predicates.

    Predicates are the pairs produced by tensor predication
    (paper Section 3.4); an empty predicate list is always true.

    Predicate contract: every pair asserts the *strict* comparison
    ``lhs < rhs`` (the form guard origins/extents produce; express
    ``lhs <= rhs`` as ``lhs < rhs + 1``).  Predicates whose expressions
    are thread-uniform select one branch for the whole block;
    thread-dependent (``threadIdx.x``-referencing) predicates describe
    per-lane *predicated execution* of the then-branch and therefore
    cannot carry an else-branch — lanes diverge individually, so no
    single branch decision exists.  :class:`repro.sim.interp.Simulator`
    enforces this.
    """

    __slots__ = ("predicates", "then", "orelse")

    def __init__(
        self,
        predicates: Sequence[Tuple[IntExpr, IntExpr]],
        then: Block,
        orelse: Optional[Block] = None,
    ):
        object.__setattr__(
            self, "predicates",
            tuple((as_expr(a), as_expr(b)) for a, b in predicates),
        )
        object.__setattr__(self, "then", then)
        object.__setattr__(self, "orelse", orelse)

    def __setattr__(self, *a):
        raise AttributeError("If is immutable")

    def children(self):
        if self.orelse is not None:
            return (self.then, self.orelse)
        return (self.then,)


class Barrier(Stmt):
    """Base class for synchronization statements.

    ``scope`` names the set of threads the barrier orders: ``"block"``
    barriers separate the accesses of every thread in the block into
    *epochs*, ``"warp"`` barriers only order threads of the same warp.
    The race sanitizer (:mod:`repro.sim.sanitizer`) advances its epoch
    counters on this metadata; two unordered conflicting accesses to
    the same element in the same epoch are a data race on hardware.
    """

    __slots__ = ()

    scope = "block"


class SyncThreads(Barrier):
    """A block-wide barrier (``__syncthreads()``)."""

    __slots__ = ()

    scope = "block"


class SyncWarp(Barrier):
    """A warp-wide barrier (``__syncwarp()``)."""

    __slots__ = ()

    scope = "warp"


class SpecStmt(Stmt):
    """A nested spec occurrence inside a decomposition body."""

    __slots__ = ("spec",)

    def __init__(self, spec):
        object.__setattr__(self, "spec", spec)

    def __setattr__(self, *a):
        raise AttributeError("SpecStmt is immutable")


class Comment(Stmt):
    """A comment carried through to the generated CUDA."""

    __slots__ = ("text",)

    def __init__(self, text: str):
        object.__setattr__(self, "text", text)

    def __setattr__(self, *a):
        raise AttributeError("Comment is immutable")


def walk(stmt: Stmt):
    """Yield ``stmt`` and every transitively nested statement."""
    yield stmt
    for child in stmt.children():
        yield from walk(child)
    if isinstance(stmt, SpecStmt) and stmt.spec.body is not None:
        yield from walk(stmt.spec.body)
