"""Graphene IR building blocks: expressions and statements."""

from .expr import IntExpr, Const, Var, add, sub, mul, div, mod, as_expr, is_const

__all__ = [
    "IntExpr", "Const", "Var", "add", "sub", "mul", "div", "mod",
    "as_expr", "is_const",
]
