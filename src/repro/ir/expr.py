"""Symbolic integer expressions used for index arithmetic.

Graphene compiles tensor accesses into scalar index expressions over thread
and loop indices (paper Section 5.5).  This module provides the expression
AST, smart constructors that perform algebraic simplification (e.g.
``(M % 256) -> M`` iff ``M < 256``), interval bounds propagation, evaluation
for the functional simulator, and C-syntax printing for code generation.

All division is C-style integer division on non-negative operands, which
coincides with floor division; Graphene only ever produces non-negative
indices so the two agree.
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping, Optional, Tuple, Union

from ..pickling import PickleBySlots

IntLike = Union[int, "IntExpr"]

_UNBOUNDED = (0, None)


class IntExpr(PickleBySlots):
    """Base class for symbolic non-negative integer expressions.

    Instances are immutable and hashable.  Arithmetic operators build new
    expressions through the simplifying smart constructors in this module.
    """

    __slots__ = ()

    # -- interval analysis -------------------------------------------------
    def bounds(self) -> Tuple[int, Optional[int]]:
        """Return an inclusive interval ``(lo, hi)`` containing this value.

        ``hi`` is ``None`` when no finite upper bound is known.
        """
        raise NotImplementedError

    # -- evaluation --------------------------------------------------------
    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a variable assignment ``env``."""
        raise NotImplementedError

    # -- code generation ---------------------------------------------------
    def to_c(self) -> str:
        """Render as a C expression string."""
        raise NotImplementedError

    def _prec(self) -> int:
        """Operator precedence for parenthesisation (larger binds tighter)."""
        return 100

    def free_vars(self) -> frozenset:
        return frozenset(v.name for v in self.walk() if isinstance(v, Var))

    def walk(self) -> Iterator["IntExpr"]:
        yield self

    # -- operators ----------------------------------------------------------
    def __add__(self, other: IntLike) -> "IntExpr":
        return add(self, other)

    def __radd__(self, other: IntLike) -> "IntExpr":
        return add(other, self)

    def __sub__(self, other: IntLike) -> "IntExpr":
        return sub(self, other)

    def __rsub__(self, other: IntLike) -> "IntExpr":
        return sub(other, self)

    def __mul__(self, other: IntLike) -> "IntExpr":
        return mul(self, other)

    def __rmul__(self, other: IntLike) -> "IntExpr":
        return mul(other, self)

    def __floordiv__(self, other: IntLike) -> "IntExpr":
        return div(self, other)

    def __rfloordiv__(self, other: IntLike) -> "IntExpr":
        return div(other, self)

    def __mod__(self, other: IntLike) -> "IntExpr":
        return mod(self, other)

    def __rmod__(self, other: IntLike) -> "IntExpr":
        return mod(other, self)

    def __repr__(self) -> str:
        return self.to_c()


class Const(IntExpr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        if not isinstance(value, int):
            raise TypeError(f"Const requires an int, got {value!r}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, *a):  # immutability
        raise AttributeError("Const is immutable")

    def bounds(self):
        return (self.value, self.value)

    def evaluate(self, env):
        return self.value

    def to_c(self):
        return str(self.value)

    def __eq__(self, other):
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self):
        return hash(("Const", self.value))


class Var(IntExpr):
    """A named integer variable, optionally with inclusive bounds."""

    __slots__ = ("name", "lo", "hi")

    def __init__(self, name: str, lo: int = 0, hi: Optional[int] = None):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, *a):
        raise AttributeError("Var is immutable")

    def bounds(self):
        return (self.lo, self.hi)

    def evaluate(self, env):
        try:
            return env[self.name]
        except KeyError:
            raise KeyError(f"unbound variable {self.name!r}") from None

    def to_c(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self):
        return hash(("Var", self.name))


class _BinOp(IntExpr):
    __slots__ = ("lhs", "rhs")
    op = "?"
    precedence = 0

    def __init__(self, lhs: IntExpr, rhs: IntExpr):
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", rhs)

    def __setattr__(self, *a):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def walk(self):
        yield self
        yield from self.lhs.walk()
        yield from self.rhs.walk()

    def _prec(self):
        return self.precedence

    def _child_c(self, child: IntExpr, *, right: bool = False) -> str:
        text = child.to_c()
        need = child._prec() < self.precedence
        if right and child._prec() == self.precedence:
            # C's binary operators are left-associative: a right child of
            # equal precedence needs parens unless both operators are the
            # same associative operator.
            same_assoc = isinstance(child, _BinOp) and child.op == self.op \
                and self.op in ("+", "*")
            if same_assoc and self.op == "*":
                # Flattening a * (b / c * d) to a * b / c * d moves the
                # floor division: only safe when the child's left spine
                # is pure multiplication.
                spine = child
                while isinstance(spine, _BinOp) \
                        and spine._prec() == self.precedence:
                    if spine.op != "*":
                        same_assoc = False
                        break
                    spine = spine.lhs
            need = not same_assoc
        return f"({text})" if need else text

    def to_c(self):
        return f"{self._child_c(self.lhs)} {self.op} {self._child_c(self.rhs, right=True)}"

    def __eq__(self, other):
        return (
            type(other) is type(self)
            and other.lhs == self.lhs
            and other.rhs == self.rhs
        )

    def __hash__(self):
        return hash((type(self).__name__, self.lhs, self.rhs))


class Add(_BinOp):
    op = "+"
    precedence = 10

    def bounds(self):
        (a, b), (c, d) = self.lhs.bounds(), self.rhs.bounds()
        return (a + c, None if b is None or d is None else b + d)

    def evaluate(self, env):
        return self.lhs.evaluate(env) + self.rhs.evaluate(env)


class Sub(_BinOp):
    op = "-"
    precedence = 10

    def bounds(self):
        (a, b), (c, d) = self.lhs.bounds(), self.rhs.bounds()
        lo = a - d if d is not None else 0
        hi = None if b is None else b - c
        return (max(lo, 0) if lo < 0 else lo, hi)

    def evaluate(self, env):
        return self.lhs.evaluate(env) - self.rhs.evaluate(env)


class Mul(_BinOp):
    op = "*"
    precedence = 20

    def bounds(self):
        (a, b), (c, d) = self.lhs.bounds(), self.rhs.bounds()
        return (a * c, None if b is None or d is None else b * d)

    def evaluate(self, env):
        return self.lhs.evaluate(env) * self.rhs.evaluate(env)


class FloorDiv(_BinOp):
    op = "/"
    precedence = 20

    def bounds(self):
        (a, b), (c, d) = self.lhs.bounds(), self.rhs.bounds()
        lo = a // d if d not in (None, 0) else 0
        hi = None if b is None else b // max(c, 1)
        return (lo, hi)

    def evaluate(self, env):
        return self.lhs.evaluate(env) // self.rhs.evaluate(env)


class Mod(_BinOp):
    op = "%"
    precedence = 20

    def bounds(self):
        _, d = self.rhs.bounds()
        (a, b) = self.lhs.bounds()
        if d is None:
            return (0, b)
        hi = d - 1 if b is None else min(b, d - 1)
        return (0, hi)

    def evaluate(self, env):
        return self.lhs.evaluate(env) % self.rhs.evaluate(env)


def _wrap(value: IntLike) -> IntExpr:
    if isinstance(value, IntExpr):
        return value
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"expected int or IntExpr, got {value!r}")


def _const_of(expr: IntExpr) -> Optional[int]:
    return expr.value if isinstance(expr, Const) else None


def add(lhs: IntLike, rhs: IntLike) -> IntExpr:
    """``lhs + rhs`` with constant folding and identity elimination."""
    lhs, rhs = _wrap(lhs), _wrap(rhs)
    a, b = _const_of(lhs), _const_of(rhs)
    if a is not None and b is not None:
        return Const(a + b)
    if a == 0:
        return rhs
    if b == 0:
        return lhs
    # Fold constants rightward: (x + c1) + c2 -> x + (c1 + c2)
    if b is not None and isinstance(lhs, Add):
        inner = _const_of(lhs.rhs)
        if inner is not None:
            return add(lhs.lhs, inner + b)
    return Add(lhs, rhs)


def sub(lhs: IntLike, rhs: IntLike) -> IntExpr:
    lhs, rhs = _wrap(lhs), _wrap(rhs)
    a, b = _const_of(lhs), _const_of(rhs)
    if a is not None and b is not None:
        return Const(a - b)
    if b == 0:
        return lhs
    if lhs == rhs:
        return Const(0)
    return Sub(lhs, rhs)


def mul(lhs: IntLike, rhs: IntLike) -> IntExpr:
    lhs, rhs = _wrap(lhs), _wrap(rhs)
    a, b = _const_of(lhs), _const_of(rhs)
    if a is not None and b is not None:
        return Const(a * b)
    if a == 0 or b == 0:
        return Const(0)
    if a == 1:
        return rhs
    if b == 1:
        return lhs
    # Canonicalise constants to the right.
    if a is not None:
        lhs, rhs, b = rhs, lhs, a
    # (x * c1) * c2 -> x * (c1 * c2)
    if b is not None and isinstance(lhs, Mul):
        inner = _const_of(lhs.rhs)
        if inner is not None:
            return mul(lhs.lhs, inner * b)
    return Mul(lhs, rhs)


def div(lhs: IntLike, rhs: IntLike) -> IntExpr:
    """``lhs / rhs`` (integer) with simplification of provable cases."""
    lhs, rhs = _wrap(lhs), _wrap(rhs)
    a, b = _const_of(lhs), _const_of(rhs)
    if b == 0:
        raise ZeroDivisionError("division by zero in index expression")
    if a is not None and b is not None:
        return Const(a // b)
    if b == 1:
        return lhs
    if b is not None:
        lo, hi = lhs.bounds()
        if hi is not None and hi < b and lo >= 0:
            return Const(0)
        # (x * c) / b when c % b == 0 -> x * (c / b)
        if isinstance(lhs, Mul):
            c = _const_of(lhs.rhs)
            if c is not None and c % b == 0:
                return mul(lhs.lhs, c // b)
        # (x / c1) / c2 -> x / (c1 * c2)
        if isinstance(lhs, FloorDiv):
            c = _const_of(lhs.rhs)
            if c is not None:
                return div(lhs.lhs, c * b)
        # (x*c + y) / b  -> x*(c/b) + y/b  when c % b == 0 and 0 <= y < gcd-safe
        if isinstance(lhs, Add):
            split = _try_split_div(lhs, b)
            if split is not None:
                return split
    return FloorDiv(lhs, rhs)


def _try_split_div(expr: Add, b: int) -> Optional[IntExpr]:
    """Simplify ``(p + q) / b`` when one addend is a multiple of ``b``."""
    for first, second in ((expr.lhs, expr.rhs), (expr.rhs, expr.lhs)):
        factor = _multiple_of(first)
        if factor % b == 0:
            lo, hi = second.bounds()
            if lo >= 0 and hi is not None and hi < b:
                return div(first, b)
    return None


def _multiple_of(expr: IntExpr) -> int:
    """Return a positive integer g such that ``expr`` is a multiple of g."""
    if isinstance(expr, Const):
        return abs(expr.value) if expr.value != 0 else 1 << 62
    if isinstance(expr, Mul):
        return _multiple_of(expr.lhs) * _multiple_of(expr.rhs)
    if isinstance(expr, Add) or isinstance(expr, Sub):
        return math.gcd(_multiple_of(expr.lhs), _multiple_of(expr.rhs))
    return 1


def mod(lhs: IntLike, rhs: IntLike) -> IntExpr:
    """``lhs % rhs`` with simplification of provable cases."""
    lhs, rhs = _wrap(lhs), _wrap(rhs)
    a, b = _const_of(lhs), _const_of(rhs)
    if b == 0:
        raise ZeroDivisionError("modulo by zero in index expression")
    if a is not None and b is not None:
        return Const(a % b)
    if b == 1:
        return Const(0)
    if b is not None:
        lo, hi = lhs.bounds()
        if lo >= 0 and hi is not None and hi < b:
            return lhs  # (M % 256) -> M  iff  M < 256
        if _multiple_of(lhs) % b == 0:
            return Const(0)
        # (x*c + y) % b -> y % b when c % b == 0
        if isinstance(lhs, Add):
            for first, second in ((lhs.lhs, lhs.rhs), (lhs.rhs, lhs.lhs)):
                if _multiple_of(first) % b == 0:
                    return mod(second, b)
        # (x % (c*b)) % b has no general rule, but (x % b) % b -> x % b
        if isinstance(lhs, Mod):
            c = _const_of(lhs.rhs)
            if c is not None and c % b == 0 and c == b:
                return lhs
    return Mod(lhs, rhs)


def as_expr(value: IntLike) -> IntExpr:
    """Coerce an int or IntExpr to an IntExpr."""
    return _wrap(value)


def is_const(expr: IntLike, value: Optional[int] = None) -> bool:
    """True if ``expr`` is a constant (optionally equal to ``value``)."""
    expr = _wrap(expr)
    if not isinstance(expr, Const):
        return False
    return value is None or expr.value == value
