"""Pretty-printing kernels as textual Graphene IR.

The paper's listings (Figures 1d and 8) show Graphene IR as text:
tensor declarations with ``%``/``#`` prefixes and full shape
annotations, specs with ``<<<exec>>>`` configurations, and plain control
flow.  ``format_kernel`` reproduces that presentation for any kernel —
useful for debugging decompositions and for documentation.
"""

from __future__ import annotations

from typing import List

from ..specs.base import Allocate, Spec
from ..specs.kernel import Kernel
from .stmt import (
    Block, Comment, ForLoop, If, SpecStmt, Stmt, SyncThreads, SyncWarp,
)


def format_kernel(kernel: Kernel) -> str:
    """Render a kernel as a Graphene IR listing (paper Figure 8 style)."""
    lines: List[str] = []
    for param in kernel.params:
        lines.append(f"{param!r}")
    for sym in kernel.symbols:
        lines.append(f"{sym.name}: i32 (parametric)")
    lines.append(f"#grid:{kernel.grid.type_str()}")
    lines.append(f"#threads:{kernel.block.type_str()}")
    lines.append(
        f"Spec {kernel.name} <<<#grid, #threads>>> "
        f"({', '.join('%' + p.name for p in kernel.params)}) {{"
    )
    _format_block(kernel.body, lines, indent=1)
    lines.append("}")
    return "\n".join(lines)


def format_spec(spec: Spec, indent: int = 0) -> str:
    lines: List[str] = []
    _format_spec(spec, lines, indent)
    return "\n".join(lines)


def _pad(indent: int) -> str:
    return "  " * indent


def _format_block(block: Block, lines: List[str], indent: int) -> None:
    for stmt in block:
        _format_stmt(stmt, lines, indent)


def _format_stmt(stmt: Stmt, lines: List[str], indent: int) -> None:
    pad = _pad(indent)
    if isinstance(stmt, Block):
        _format_block(stmt, lines, indent)
    elif isinstance(stmt, Comment):
        lines.append(f"{pad}// {stmt.text}")
    elif isinstance(stmt, SyncThreads):
        lines.append(f"{pad}sync.threads")
    elif isinstance(stmt, SyncWarp):
        lines.append(f"{pad}sync.warp")
    elif isinstance(stmt, ForLoop):
        lines.append(
            f"{pad}for({stmt.var.name} = {stmt.start.to_c()}; "
            f"{stmt.var.name} < {stmt.stop.to_c()}; "
            f"{stmt.var.name} += {stmt.step.to_c()}) {{"
        )
        _format_block(stmt.body, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, If):
        cond = " && ".join(
            f"{a.to_c()} < {b.to_c()}" for a, b in stmt.predicates
        )
        lines.append(f"{pad}if ({cond}) {{")
        _format_block(stmt.then, lines, indent + 1)
        if stmt.orelse is not None:
            lines.append(f"{pad}}} else {{")
            _format_block(stmt.orelse, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, SpecStmt):
        _format_spec(stmt.spec, lines, indent)
    else:
        lines.append(f"{pad}<{type(stmt).__name__}>")


def _format_spec(spec: Spec, lines: List[str], indent: int) -> None:
    pad = _pad(indent)
    if isinstance(spec, Allocate):
        lines.append(f"{pad}Allocate {spec.tensor!r}")
        return
    execs = ", ".join(f"#{g.name}:{g.type_str()}" for g in spec.exec_config)
    ins = ", ".join(_operand(t) for t in spec.inputs)
    outs = ", ".join(_operand(t) for t in spec.outputs)
    head = spec.kind
    op = getattr(spec, "op", None)
    if op is not None:
        head = f"{spec.kind}<{op.name}>"
    label = f"  // {spec.label}" if spec.label else ""
    signature = f"{pad}{head} <<<{execs}>>> ({ins}) -> ({outs}){label}"
    if spec.body is None:
        lines.append(signature)
    else:
        lines.append(signature + " {")
        _format_block(spec.body, lines, indent + 1)
        lines.append(f"{pad}}}")


def _operand(tensor) -> str:
    offset = tensor.offset.to_c()
    at = "" if offset == "0" else f" @ {offset}"
    return f"%{tensor.name}:{tensor.type_str()}{at}"
