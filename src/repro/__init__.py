"""Graphene: an IR for optimized tensor computations on GPUs.

A reproduction of Hagedorn et al., ASPLOS 2023.  The public API:

* :mod:`repro.layout` — shapes, layouts, tiles (the CuTe-style algebra);
* :mod:`repro.tensor` — first-class data tensors with hierarchical tiles;
* :mod:`repro.threads` — logical thread groups;
* :mod:`repro.specs` — specifications and decompositions;
* :mod:`repro.frontend` — the Python kernel-authoring API;
* :mod:`repro.codegen` — CUDA C++ generation;
* :mod:`repro.sim` — the functional GPU simulator;
* :mod:`repro.arch` — the architecture registry (SM70/SM86/SM90 tables);
* :mod:`repro.perfmodel` — the analytical performance model;
* :mod:`repro.kernels` — the paper's evaluation kernels;
* :mod:`repro.graph` — the whole-network fusion compiler;
* :mod:`repro.eval` — figure-by-figure evaluation harness.

The stable v1 graph API is three calls::

    net = repro.network("BERT-base")        # op graph for a named network
    net.lower("ampere", tune=True)          # partition, fuse, autotune
    run = net.run()                         # execute + verify vs numpy
"""

from .arch import (
    AMPERE, ARCHITECTURES, HOPPER, VOLTA, Architecture, architecture,
    register, registered,
)
from .codegen import CudaGenerator, KernelSource
from .frontend.builder import KernelBuilder
from .graph import Network, network
from .layout import Layout, Swizzle, col_major, row_major
from .sim import (
    KernelProfile, Machine, RunResult, SimulationError, Simulator,
)
from .specs import Kernel
from .tensor import FP16, FP32, GL, INT32, RF, SH, Tensor, tensor
from .threads import ThreadGroup, blocks, threads, warp

__version__ = "1.0.0"

__all__ = [
    "AMPERE", "ARCHITECTURES", "HOPPER", "VOLTA", "Architecture",
    "architecture", "register", "registered",
    "CudaGenerator", "KernelSource", "KernelBuilder",
    "Layout", "Network", "network", "Swizzle", "col_major", "row_major",
    "KernelProfile", "Machine", "RunResult", "SimulationError",
    "Simulator", "Kernel",
    "FP16", "FP32", "GL", "INT32", "RF", "SH", "Tensor", "tensor",
    "ThreadGroup", "blocks", "threads", "warp",
    "__version__",
]
