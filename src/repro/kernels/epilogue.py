"""Fused GEMM + pointwise epilogues (paper Figure 10).

cuBLASLt provides GEMM kernels with fused bias addition and activation
functions; Graphene expresses the same fusion by applying pointwise
specs to the accumulator register views before the epilogue stores them.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..arch import Architecture, architecture
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP16
from .config import GemmEpilogueConfig
from .gemm_optimized import build_ampere_tc_gemm, build_volta_tc_gemm


def build(cfg: GemmEpilogueConfig) -> Kernel:
    """Canonical constructor over the shared config convention."""
    return build_gemm_epilogue(cfg.m, cfg.n, cfg.k, arch=cfg.arch,
                               bias=cfg.bias, activation=cfg.activation,
                               block_tile=cfg.block_tile,
                               warp_grid=cfg.warp_grid, name=cfg.name)


def from_tuned(m: int, n: int, k: int, arch: str = "ampere",
               **tune_kwargs) -> Kernel:
    """No epilogue-specific tuning space is registered yet; returns the
    default config (kept so every kernel module exposes the same
    ``build``/``from_tuned`` pair)."""
    return build(GemmEpilogueConfig(m, n, k, arch=arch))


def pointwise_epilogue(bias: bool = True, activation: Optional[str] = "relu"):
    """An epilogue callback adding ``+ bias`` and/or an activation.

    The bias tensor (one value per output column) is declared as an
    extra kernel parameter the first time the callback runs.
    """

    def apply(site):
        kb = site.kb
        n = site.c.dim(1)
        bias_t = kb.param("bias", (n,), FP16) if bias else None
        for view, row, col in site.pairs():
            if bias_t is not None:
                bias_vec = bias_t.tile((site.vec,))[col // site.vec]
                kb.binary("add", view, bias_vec, view)
            if activation is not None:
                kb.unary(activation, view, view)

    return apply


def build_gemm_epilogue(
    m: int,
    n: int,
    k: int,
    arch: str = "ampere",
    bias: bool = True,
    activation: Optional[str] = "relu",
    block_tile: Tuple[int, int, int] = (128, 128, 32),
    warp_grid: Tuple[int, int] = (2, 2),
    name: Optional[str] = None,
) -> Kernel:
    """A fused ``C = act(A @ B + bias)`` kernel (paper Figure 10)."""
    target = architecture(arch) if not isinstance(arch, Architecture) \
        else arch
    if name is None:
        suffix = ("bias_" if bias else "") + (activation or "identity")
        name = f"graphene_gemm_{suffix}_{target.key}"
    epilogue = pointwise_epilogue(bias, activation)
    # Capability dispatch: cp.async-staged ldmatrix GEMM wherever the
    # architecture has it (Ampere, Hopper), quad-pair GEMM otherwise.
    if target.supports("cp_async"):
        return build_ampere_tc_gemm(
            m, n, k, block_tile=block_tile, warp_grid=warp_grid,
            name=name, epilogue=epilogue,
        )
    return build_volta_tc_gemm(
        m, n, k, block_tile=block_tile, warp_grid=warp_grid,
        name=name, epilogue=epilogue,
    )
