"""Shared config-dataclass convention for the kernel library.

PR 1 grew each kernel family a slightly different constructor signature;
this module unifies the surface: every family has one frozen
``<Family>Config`` dataclass holding the problem shape plus the
decomposition knobs, and every module in :mod:`repro.kernels` exposes
the same pair

* ``build(cfg: <Family>Config) -> Kernel`` — the canonical constructor,
* ``from_tuned(...) -> Kernel`` — the autotuned constructor (families
  without a registered tuning space fall back to the default config),

and nothing else — the original ``build_*`` entry points are retired.
``repro.kernels.build(cfg)`` dispatches on the config type, so call
sites can treat configs as plain data (they are hashable and
``asdict``-able for caches and artifacts).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import ClassVar, Optional, Tuple

from ..tensor.dtypes import DType, FP16


@dataclass(frozen=True)
class KernelConfig:
    """Base class: one frozen dataclass per kernel family."""

    #: Family key (matches the tuner's space registry where one exists).
    family: ClassVar[str] = ""

    def as_dict(self) -> dict:
        d = asdict(self)
        d["family"] = self.family
        return d

    def replace(self, **changes) -> "KernelConfig":
        from dataclasses import replace as _replace
        return _replace(self, **changes)


@dataclass(frozen=True)
class NaiveGemmConfig(KernelConfig):
    """The Figure 8 baseline: per-thread fma GEMM, no shared staging."""

    family: ClassVar[str] = "gemm_naive"
    m: int = 1024
    n: int = 1024
    k: int = 1024
    grid: Tuple[int, int] = (8, 8)
    threads: Tuple[int, int] = (16, 16)
    dtype: DType = FP16


@dataclass(frozen=True)
class GemmConfig(KernelConfig):
    """Tensor-core GEMM (paper Figure 9 family).

    ``variant`` selects the architecture decomposition (``ampere``,
    ``ampere_pipelined``, ``volta``); ``swizzled=True`` derives the
    bank-spreading staging-buffer swizzles from the block tile's row
    lengths (the Section 3.2 layouts "beyond row- and column-major").
    """

    family: ClassVar[str] = "gemm"
    m: int = 1024
    n: int = 1024
    k: int = 1024
    block_tile: Tuple[int, int, int] = (128, 128, 32)
    warp_grid: Tuple[int, int] = (2, 2)
    variant: str = "ampere"
    qp_tile: Tuple[int, int] = (2, 2)
    swizzled: bool = False
    use_ldmatrix: bool = True
    name: Optional[str] = None


@dataclass(frozen=True)
class ParametricGemmConfig(KernelConfig):
    """GEMM with a symbolic row count ``M`` (bound at launch)."""

    family: ClassVar[str] = "gemm_parametric"
    n: int = 1024
    k: int = 1024
    row_tile: int = 32
    max_grid_rows: int = 64
    threads: int = 128
    dtype: DType = FP16
    name: str = "graphene_gemm_parametric"


@dataclass(frozen=True)
class GemmEpilogueConfig(KernelConfig):
    """Fused ``C = act(A @ B + bias)`` (paper Figure 10)."""

    family: ClassVar[str] = "gemm_epilogue"
    m: int = 1024
    n: int = 1024
    k: int = 1024
    arch: str = "ampere"
    bias: bool = True
    activation: Optional[str] = "relu"
    block_tile: Tuple[int, int, int] = (128, 128, 32)
    warp_grid: Tuple[int, int] = (2, 2)
    name: Optional[str] = None


@dataclass(frozen=True)
class LayernormConfig(KernelConfig):
    """Row-wise layer normalization (paper Figure 13 family)."""

    family: ClassVar[str] = "layernorm"
    rows: int = 1024
    hidden: int = 1024
    warps_per_block: int = 4
    warp_per_row: bool = True
    name: str = "graphene_layernorm"


@dataclass(frozen=True)
class MlpConfig(KernelConfig):
    """Fused multi-layer perceptron (paper Figure 11 family)."""

    family: ClassVar[str] = "mlp"
    m: int = 256
    hidden: int = 256
    layers: int = 2
    block_rows: int = 64
    warp_grid: Tuple[int, int] = (2, 2)
    activation: str = "relu"
    name: str = "graphene_fused_mlp"


@dataclass(frozen=True)
class SoftmaxConfig(KernelConfig):
    """Row-wise softmax, one thread per row."""

    family: ClassVar[str] = "softmax"
    rows: int = 1024
    cols: int = 1024
    threads_per_block: int = 128
    scale: float = 1.0
    name: str = "graphene_softmax"


@dataclass(frozen=True)
class LstmConfig(KernelConfig):
    """Fused LSTM cell ``Y = act(X @ W + H @ R + bias)`` (Figure 12)."""

    family: ClassVar[str] = "lstm"
    m: int = 512
    n: int = 512
    k: int = 512
    block_tile: Tuple[int, int, int] = (128, 128, 32)
    warp_grid: Tuple[int, int] = (2, 2)
    activation: str = "relu"
    name: str = "graphene_fused_lstm"


@dataclass(frozen=True)
class FmhaConfig(KernelConfig):
    """Fused multi-head attention (paper Figure 14 family)."""

    family: ClassVar[str] = "fmha"
    batch_heads: int = 8
    seq: int = 256
    head_dim: int = 64
    q_tile: int = 16
    kv_chunk: int = 64
    name: str = "graphene_fused_fmha"


@dataclass(frozen=True)
class LdmatrixMoveConfig(KernelConfig):
    """The standalone ldmatrix reference kernel (one warp, one tile)."""

    family: ClassVar[str] = "moves"
    name: str = "ldmatrix_move"


@dataclass(frozen=True)
class BiasActConfig(KernelConfig):
    """Row-wise pointwise epilogue as a standalone kernel.

    ``Y = act(X + bias + R)`` with every term optional — the unfused
    counterpart of the Figure 10 fused epilogue, used by the graph
    lowering's library-style (unfused) pipelines.
    """

    family: ClassVar[str] = "bias_act"
    rows: int = 128
    cols: int = 128
    bias: bool = True
    activation: Optional[str] = None
    residual: bool = False
    name: str = "graphene_bias_act"


@dataclass(frozen=True)
class TransposeConfig(KernelConfig):
    """``Y[c, r] = X[r, c]`` (materialises K^T for unfused attention)."""

    family: ClassVar[str] = "transpose"
    rows: int = 64
    cols: int = 64
    name: str = "graphene_transpose"


@dataclass(frozen=True)
class SplitHeadsConfig(KernelConfig):
    """Unpack a packed QKV projection into per-head Q/K/V row bands.

    ``QKV`` is ``[batch*seq, 3*heads*head_dim]`` (column blocks Q|K|V,
    each split by head); outputs are ``[batch*heads*seq, head_dim]``
    with one contiguous ``seq``-row band per (batch, head) — the layout
    the FMHA kernels consume.
    """

    family: ClassVar[str] = "split_heads"
    batch: int = 1
    heads: int = 2
    seq: int = 32
    head_dim: int = 32
    name: str = "graphene_split_heads"


@dataclass(frozen=True)
class MergeHeadsConfig(KernelConfig):
    """Repack per-head attention outputs into ``[batch*seq, hidden]``."""

    family: ClassVar[str] = "merge_heads"
    batch: int = 1
    heads: int = 2
    seq: int = 32
    head_dim: int = 32
    name: str = "graphene_merge_heads"


@dataclass(frozen=True)
class CacheAppendConfig(KernelConfig):
    """Write one decode step's K/V rows into the per-head KV cache.

    Reads the packed single-token QKV projection (row 0) and scatters
    the K and V head chunks to position ``pos`` of each head's
    ``context``-row cache band.
    """

    family: ClassVar[str] = "cache_append"
    heads: int = 2
    head_dim: int = 32
    context: int = 128
    pos: int = 0
    qkv_rows: int = 1
    name: str = "graphene_cache_append"


@dataclass(frozen=True)
class DecodeFmhaConfig(KernelConfig):
    """Single-query attention over a KV cache (serving decode step).

    Batch-1, long-context and memory-bound: one block per head, one
    thread per cached position.  The query row is read directly from
    the packed QKV projection output (row 0), so no separate Q-extract
    kernel is needed.
    """

    family: ClassVar[str] = "decode_fmha"
    heads: int = 2
    context: int = 128
    head_dim: int = 32
    qkv_rows: int = 1
    name: str = "graphene_decode_fmha"


@dataclass(frozen=True)
class ResidualLayernormConfig(KernelConfig):
    """Fused ``Y = layernorm(X + R)`` (the graph's LN+residual group)."""

    family: ClassVar[str] = "residual_layernorm"
    rows: int = 128
    hidden: int = 128
    warps_per_block: int = 1
    name: str = "graphene_residual_layernorm"


@dataclass(frozen=True)
class HopperFp8GemmConfig(KernelConfig):
    """Hopper FP8 warpgroup GEMM (TMA staging + wgmma + 2x accumulation)."""

    family: ClassVar[str] = "gemm_fp8"
    m: int = 256
    n: int = 256
    k: int = 256
    block_k: int = 64
    two_stage_acc: bool = True
    name: Optional[str] = None


@dataclass(frozen=True)
class Sparse24GemmConfig(KernelConfig):
    """Hopper 2:4 structured-sparse GEMM (decompress + f16 wgmma)."""

    family: ClassVar[str] = "gemm_sparse24"
    m: int = 256
    n: int = 256
    k: int = 256
    block_k: int = 32
    name: Optional[str] = None


def config_summary(cfg: KernelConfig) -> str:
    """One-line ``family(field=value, ...)`` rendering for reports."""
    parts = ", ".join(
        f"{f.name}={getattr(cfg, f.name)!r}" for f in fields(cfg)
    )
    return f"{cfg.family}({parts})"


__all__ = [
    "KernelConfig", "NaiveGemmConfig", "GemmConfig",
    "ParametricGemmConfig", "GemmEpilogueConfig", "LayernormConfig",
    "MlpConfig", "SoftmaxConfig", "LstmConfig", "FmhaConfig",
    "LdmatrixMoveConfig", "BiasActConfig", "TransposeConfig",
    "SplitHeadsConfig", "MergeHeadsConfig", "CacheAppendConfig",
    "DecodeFmhaConfig", "ResidualLayernormConfig", "HopperFp8GemmConfig",
    "Sparse24GemmConfig", "config_summary",
]
