"""Fused Layernorm kernels (paper Figure 13).

Layernorm contains no GEMM — only pointwise and reduction computations —
so it exercises the non-TensorCore half of Graphene's spec vocabulary.
Two decompositions are provided:

* ``warp_per_row``: one warp normalises one row; lanes hold disjoint row
  chunks in registers and combine partial sums with ``shfl.sync.bfly``
  butterflies (the fast decomposition, matching Apex-class kernels);
* ``thread_per_row``: one thread per row, sequential register
  reductions (a simpler but still fused decomposition).
"""

from __future__ import annotations

from ..frontend.builder import KernelBuilder
from ..ir.expr import Const, Var
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP16, FP32
from ..tensor.memspace import RF
from .config import LayernormConfig, ResidualLayernormConfig

EPS = 1e-5


def build(cfg: LayernormConfig) -> Kernel:
    """``Y[r] = (X[r] - mean) * rsqrt(var + eps) * gamma + beta``."""
    if cfg.warp_per_row:
        return _build_warp_per_row(cfg.rows, cfg.hidden,
                                   cfg.warps_per_block, cfg.name)
    return _build_thread_per_row(cfg.rows, cfg.hidden,
                                 cfg.warps_per_block * 32, cfg.name)


def build_residual_layernorm(cfg: ResidualLayernormConfig) -> Kernel:
    """Fused ``Y = layernorm(X + R)`` (the graph's LN+residual group)."""
    return _build_warp_per_row(cfg.rows, cfg.hidden, cfg.warps_per_block,
                               cfg.name, residual=True)


def _build_warp_per_row(rows, hidden, warps_per_block, name,
                        residual=False) -> Kernel:
    if hidden % 32:
        raise ValueError("hidden must be divisible by the warp size")
    chunk = hidden // 32
    rows_per_block = warps_per_block
    if rows % rows_per_block:
        raise ValueError("rows must divide by warps per block")

    kb = KernelBuilder(name, (rows // rows_per_block,),
                       (warps_per_block * 32,))
    x = kb.param("X", (rows, hidden), FP16)
    res = kb.param("R", (rows, hidden), FP16) if residual else None
    gamma = kb.param("gamma", (hidden,), FP16)
    beta = kb.param("beta", (hidden,), FP16)
    y = kb.param("Y", (rows, hidden), FP16)
    bid = kb.grid.indices()[0]

    t = Var("threadIdx.x")
    warps = kb.block.tile([32])
    wid = warps.indices()[0]
    lane = t % 32
    row = bid * rows_per_block + wid

    part = kb.alloc("ln_part", (chunk,), FP32, RF)
    scalar = kb.alloc("ln_scalar", (1,), FP32, RF)
    peer = kb.alloc("ln_peer", (1,), FP32, RF)
    mean = kb.alloc("ln_mean", (1,), FP32, RF)
    rstd = kb.alloc("ln_rstd", (1,), FP32, RF)
    inv_h = kb.alloc("ln_inv_h", (1,), FP32, RF)
    eps = kb.alloc("ln_eps", (1,), FP32, RF)
    kb.init(inv_h, 1.0 / hidden)
    kb.init(eps, EPS)

    x_chunks = x.tile((1, chunk))
    y_chunks = y.tile((1, chunk))
    g_chunks = gamma.tile((chunk,))
    b_chunks = beta.tile((chunk,))

    kb.comment("each lane loads its contiguous row chunk")
    kb.move(x_chunks[row, lane], part)
    if res is not None:
        r_part = kb.alloc("ln_res", (chunk,), FP32, RF)
        kb.move(res.tile((1, chunk))[row, lane], r_part)
        kb.binary("add", part, r_part, part)

    def warp_allreduce():
        """Butterfly-sum `scalar` across the warp via shfl.sync.bfly."""
        for mask in (16, 8, 4, 2, 1):
            kb.shfl(scalar, peer, xor_mask=mask, threads=warps)
            kb.binary("add", scalar, peer, scalar)

    kb.comment("mean = sum(x) / hidden, combined across lanes")
    kb.reduce("add", part, scalar)
    warp_allreduce()
    kb.binary("mul", scalar, inv_h, mean)

    kb.comment("var = sum((x - mean)^2) / hidden")
    centered = kb.alloc("ln_centered", (chunk,), FP32, RF)
    squares = kb.alloc("ln_squares", (chunk,), FP32, RF)
    kb.binary("sub", part, mean, centered)
    kb.unary("square", centered, squares)
    kb.reduce("add", squares, scalar)
    warp_allreduce()
    kb.binary("mul", scalar, inv_h, scalar)
    kb.binary("add", scalar, eps, scalar)
    kb.unary("rsqrt", scalar, rstd)

    kb.comment("normalise, scale and shift")
    kb.binary("mul", centered, rstd, centered)
    kb.binary("mul", centered, g_chunks[lane], centered)
    kb.binary("add", centered, b_chunks[lane], centered)
    kb.move(centered, y_chunks[row, lane])
    return kb.build()


def from_tuned(rows: int, hidden: int, arch="ampere", **tune_kwargs) -> Kernel:
    """Build the layernorm kernel the autotuner selects for this problem.

    Runs (or serves from the persistent tuning cache) a
    :func:`repro.tuner.tune` search over warp-per-row vs thread-per-row
    decompositions and rows-per-block choices, then instantiates the
    winning configuration at full problem scale.  Keyword arguments are
    forwarded to :func:`repro.tuner.tune`.
    """
    from ..tuner import tune

    result = tune("layernorm", {"rows": rows, "hidden": hidden}, arch=arch,
                  **tune_kwargs)
    return result.build_kernel()


def _build_thread_per_row(rows, hidden, threads_per_block, name) -> Kernel:
    if rows % threads_per_block:
        raise ValueError("rows must divide by the block size")

    kb = KernelBuilder(name + "_tpr", (rows // threads_per_block,),
                       (threads_per_block,))
    x = kb.param("X", (rows, hidden), FP16)
    gamma = kb.param("gamma", (hidden,), FP16)
    beta = kb.param("beta", (hidden,), FP16)
    y = kb.param("Y", (rows, hidden), FP16)
    bid = kb.grid.indices()[0]
    t = Var("threadIdx.x")
    row = bid * threads_per_block + t

    vals = kb.alloc("ln_row", (hidden,), FP32, RF)
    mean = kb.alloc("ln_mean", (1,), FP32, RF)
    var = kb.alloc("ln_var", (1,), FP32, RF)
    inv_h = kb.alloc("ln_inv_h", (1,), FP32, RF)
    eps = kb.alloc("ln_eps", (1,), FP32, RF)
    kb.init(inv_h, 1.0 / hidden)
    kb.init(eps, EPS)

    x_rows = x.tile((1, None))
    y_rows = y.tile((1, None))
    kb.move(x_rows[row, 0], vals)
    kb.reduce("add", vals, mean)
    kb.binary("mul", mean, inv_h, mean)
    kb.binary("sub", vals, mean, vals)
    squares = kb.alloc("ln_squares", (hidden,), FP32, RF)
    kb.unary("square", vals, squares)
    kb.reduce("add", squares, var)
    kb.binary("mul", var, inv_h, var)
    kb.binary("add", var, eps, var)
    kb.unary("rsqrt", var, var)
    kb.binary("mul", vals, var, vals)
    kb.binary("mul", vals, gamma, vals)
    kb.binary("add", vals, beta, vals)
    kb.move(vals, y_rows[row, 0])
    return kb.build()
