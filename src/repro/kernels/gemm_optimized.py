"""Optimized Tensor Core GEMM pipelines (paper Figure 9).

The Ampere kernel follows the structure of cuBLAS-class kernels:

1. every thread-block owns a ``BM x BN`` tile of C and walks K in
   ``BK``-deep slices;
2. A and B slices are staged into shared memory with vectorized
   (``cp.async``) copies;
3. each warp owns a sub-tile and uses ``ldmatrix`` (``.trans`` for B) to
   load mma fragments from shared memory;
4. warps issue ``mma.m16n8k16`` Tensor Core instructions accumulating in
   fp32 registers;
5. the epilogue converts accumulators to fp16 and stores them (an
   optional fused pointwise epilogue is added by
   :mod:`repro.kernels.epilogue`).

The Volta kernel replaces steps 3-4 with per-quad-pair ``mma.m8n8k4``
fragments loaded by per-thread shared-memory moves.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..frontend.builder import KernelBuilder
from ..ir.expr import Const, Var
from ..layout.swizzle import IDENTITY_SWIZZLE, Swizzle
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP16, FP32
from ..tensor.memspace import RF, SH
from ..tensor.tensor import Tensor
from .tc_common import WarpMmaEngine


def validate_gemm_config(
    m: int,
    n: int,
    k: int,
    block_tile: Tuple[int, int, int],
    warp_grid: Tuple[int, int],
    mma_tile: Tuple[int, int, int] = (16, 8, 16),
    stages: int = 1,
    qp_tile: Optional[Tuple[int, int]] = None,
) -> None:
    """Check a GEMM decomposition config against a problem shape.

    Raises :class:`ValueError` naming every offending dimension, so
    callers (and the tuner's space pruner, which imports this) learn
    *why* a tiling is illegal instead of failing deep inside tile
    construction with an opaque shape error.  ``qp_tile`` switches to
    the Volta quad-pair constraints (warp tile = ``16 * qp_tile``).
    """
    bm, bn, bk = block_tile
    wm_count, wn_count = warp_grid
    problems = []
    if min(bm, bn, bk, wm_count, wn_count) <= 0:
        problems.append(
            f"tile dimensions must be positive: block_tile={block_tile} "
            f"warp_grid={warp_grid}"
        )
    else:
        if m % bm:
            problems.append(f"M={m} is not divisible by block tile BM={bm}")
        if n % bn:
            problems.append(f"N={n} is not divisible by block tile BN={bn}")
        if k % bk:
            problems.append(f"K={k} is not divisible by block tile BK={bk}")
        if qp_tile is not None:
            tm_count, tn_count = qp_tile
            if bm != wm_count * 16 * tm_count:
                problems.append(
                    f"BM={bm} must equal warp_grid[0]*16*qp_tile[0]"
                    f"={wm_count}*16*{tm_count}={wm_count * 16 * tm_count}"
                )
            if bn != wn_count * 16 * tn_count:
                problems.append(
                    f"BN={bn} must equal warp_grid[1]*16*qp_tile[1]"
                    f"={wn_count}*16*{tn_count}={wn_count * 16 * tn_count}"
                )
            if bk % 4:
                problems.append(f"BK={bk} must divide into depth-4 mma steps")
        else:
            mma_m, mma_n, mma_k = mma_tile
            if bm % wm_count:
                problems.append(
                    f"BM={bm} is not divisible by warp_grid[0]={wm_count}"
                )
            if bn % wn_count:
                problems.append(
                    f"BN={bn} is not divisible by warp_grid[1]={wn_count}"
                )
            wtm = bm // wm_count if bm % wm_count == 0 else 0
            wtn = bn // wn_count if bn % wn_count == 0 else 0
            if wtm and wtm % mma_m:
                problems.append(
                    f"warp tile M={wtm} (BM={bm}/warps={wm_count}) is not "
                    f"divisible by the mma tile M={mma_m}"
                )
            if wtn and wtn % mma_n:
                problems.append(
                    f"warp tile N={wtn} (BN={bn}/warps={wn_count}) is not "
                    f"divisible by the mma tile N={mma_n}"
                )
            if bk % mma_k:
                problems.append(
                    f"BK={bk} is not divisible by the mma tile K={mma_k}"
                )
        if stages > 1 and bk and k % bk == 0 and (k // bk) % stages:
            quantum = "an even" if stages == 2 else f"a multiple-of-{stages}"
            problems.append(
                f"{stages}-stage pipelining needs {quantum} K-slice "
                f"count, got {k}//{bk}={k // bk}"
            )
    if problems:
        raise ValueError(
            "invalid GEMM configuration for "
            f"{m}x{n}x{k}: " + "; ".join(problems)
        )


def _stage_to_shared(kb, gl_tile: Tensor, sh: Tensor, num_threads: int,
                     t: Var, vec: int = 8) -> None:
    """Vectorized cooperative copy of a 2-D tile into shared memory."""
    rows, cols = gl_tile.dim(0), gl_tile.dim(1)
    vecs_per_row = cols // vec
    total = rows * vecs_per_row
    gl_vecs = gl_tile.tile((1, vec))
    sh_vecs = sh.tile((1, vec))
    full_rounds, remainder = divmod(total, num_threads)
    for c in range(full_rounds):
        flat = Const(c * num_threads) + t
        row = flat // vecs_per_row
        colv = flat % vecs_per_row
        kb.move(gl_vecs[row, colv], sh_vecs[row, colv])
    if remainder:
        flat = Const(full_rounds * num_threads) + t
        with kb.when([(flat, Const(total))]):
            row = flat // vecs_per_row
            colv = flat % vecs_per_row
            kb.move(gl_vecs[row, colv], sh_vecs[row, colv])


def build_ampere_tc_gemm(
    m: int,
    n: int,
    k: int,
    block_tile: Tuple[int, int, int] = (128, 128, 32),
    warp_grid: Tuple[int, int] = (2, 2),
    swizzle: Swizzle = IDENTITY_SWIZZLE,
    use_ldmatrix: bool = True,
    name: str = "graphene_gemm_sm86",
    epilogue=None,
    swizzle_a: Optional[Swizzle] = None,
    swizzle_b: Optional[Swizzle] = None,
) -> Kernel:
    """Tensor Core GEMM for SM86: ``C = A @ B`` (fp16 in, fp32 accum).

    ``epilogue(kb, ctx)`` — if given — is invoked before the final
    store with an :class:`EpilogueSite` describing the per-thread
    accumulator pairs and their global coordinates; this is how fused
    GEMM+pointwise kernels are expressed (paper Figure 10).

    ``use_ldmatrix=False`` replaces the tensorized fragment loads with
    per-thread scalar shared-memory moves (the paper's ~17%-slower
    alternative) — the ablation of Section 2.

    ``swizzle_a`` / ``swizzle_b`` override ``swizzle`` per staging
    buffer (their row lengths differ, so a bank-spreading permutation
    for A is generally wrong for B).
    """
    validate_gemm_config(m, n, k, block_tile, warp_grid)
    bm, bn, bk = block_tile
    wm_count, wn_count = warp_grid
    nwarps = wm_count * wn_count
    num_threads = nwarps * 32
    wtm, wtn = bm // wm_count, bn // wn_count
    mi_count, ni_count = wtm // 16, wtn // 8
    ki_count = bk // 16

    kb = KernelBuilder(name, (m // bm, n // bn), (num_threads,))
    a = kb.param("A", (m, k), FP16)
    b = kb.param("B", (k, n), FP16)
    c = kb.param("C", (m, n), FP16)
    bid_m, bid_n = kb.grid.indices()

    smem_a = kb.alloc("smem_a", (bm, bk), FP16, SH,
                      swizzle=swizzle_a if swizzle_a is not None else swizzle)
    smem_b = kb.alloc("smem_b", (bk, bn), FP16, SH,
                      swizzle=swizzle_b if swizzle_b is not None else swizzle)

    engine = WarpMmaEngine(kb, warp_grid, mi_count, ni_count)
    accs = engine.make_accumulators(init=0.0)
    t = engine.t

    a_blocks = a.tile((bm, bk))
    b_blocks = b.tile((bk, bn))

    with kb.loop("kt", k // bk, unroll=False) as kt:
        kb.comment("stage A and B slices into shared memory")
        _stage_to_shared(kb, a_blocks[bid_m, kt], smem_a, num_threads, t)
        _stage_to_shared(kb, b_blocks[kt, bid_n], smem_b, num_threads, t)
        kb.sync()
        engine.mma_pass(smem_a, smem_b, accs, ki_count,
                        use_ldmatrix=use_ldmatrix)
        kb.sync()

    kb.comment("epilogue: write fp32 accumulators back as fp16")
    entries = engine.acc_entries(accs, bid_m * bm, bid_n * bn)
    site = EpilogueSite(kb, entries, c, vec=2)
    if epilogue is not None:
        epilogue(site)
    site.store()
    return kb.build()


class EpilogueSite:
    """Hands fused epilogues the accumulator views and C coordinates.

    Each entry of :meth:`pairs` is ``(acc_view, row_expr, col_expr)``:
    a contiguous ``vec``-value fp32 register view holding
    ``C[row, col:col+vec]`` of the output tile.  Fused epilogues (bias
    add, activations, ...) apply pointwise specs to the views before
    :meth:`store` writes them out (paper Figure 10).
    """

    def __init__(self, kb, entries, c, vec):
        self.kb = kb
        self._entries = entries
        self.c = c
        self.vec = vec

    def pairs(self):
        return list(self._entries)

    def store(self):
        c_vecs = self.c.tile((1, self.vec))
        for view, row, col in self._entries:
            self.kb.move(view, c_vecs[row, col // self.vec])


def build_volta_tc_gemm(
    m: int,
    n: int,
    k: int,
    block_tile: Tuple[int, int, int] = (128, 128, 32),
    warp_grid: Tuple[int, int] = (4, 4),
    qp_tile: Tuple[int, int] = (2, 2),
    name: str = "graphene_gemm_sm70",
    epilogue=None,
) -> Kernel:
    """Tensor Core GEMM for SM70 using quad-pair ``mma.m8n8k4``.

    Each warp covers a ``16*qp_tile`` C tile: its four quad-pairs
    (paper Figure 6) each own a grid of 8x8 sub-tiles and iterate K in
    depth-4 mma steps.  Fragments are loaded from shared memory with
    per-thread moves (Volta has no ldmatrix).  The paper-scale
    configuration is a 128x128x32 block tile from 4x4 warps of 2x2
    quad-pair tiles (512 threads).
    """
    validate_gemm_config(m, n, k, block_tile, warp_grid, qp_tile=qp_tile)
    bm, bn, bk = block_tile
    wm_count, wn_count = warp_grid
    tm_count, tn_count = qp_tile
    wtm, wtn = 16 * tm_count, 16 * tn_count
    nwarps = wm_count * wn_count
    num_threads = nwarps * 32

    kb = KernelBuilder(name, (m // bm, n // bn), (num_threads,))
    a = kb.param("A", (m, k), FP16)
    b = kb.param("B", (k, n), FP16)
    c = kb.param("C", (m, n), FP16)
    bid_m, bid_n = kb.grid.indices()

    smem_a = kb.alloc("smem_a", (bm, bk), FP16, SH)
    smem_b = kb.alloc("smem_b", (bk, bn), FP16, SH)

    t = Var("threadIdx.x")
    warps = kb.block.tile([32])
    wid = warps.indices()[0]
    wm = wid % wm_count
    wn = wid // wm_count

    from ..layout.layout import Layout

    # Quad-pairs: the non-contiguous [(4,2):(1,16)] groups of Figure 6.
    quad_pairs = kb.block.tile([Layout((4, 2), (1, 16))])
    qp_m = (t // 4) % 2
    qp_n = (t // 8) % 2
    li = t % 4 + ((t // 16) % 2) * 4  # position within the quad-pair

    accs = {}
    a_frags = {}
    b_frags = {}
    for ti in range(tm_count):
        a_frags[ti] = kb.alloc(f"a_frag_qp_{ti}", (4,), FP16, RF)
        for tj in range(tn_count):
            acc = kb.alloc(f"acc_qp_{ti}_{tj}", (2, 4), FP32, RF)
            kb.init(acc, 0.0)
            accs[(ti, tj)] = acc
    for tj in range(tn_count):
        b_frags[tj] = kb.alloc(f"b_frag_qp_{tj}", (4,), FP16, RF)

    a_blocks = a.tile((bm, bk))
    b_blocks = b.tile((bk, bn))

    with kb.loop("kt", k // bk, unroll=False) as kt:
        kb.comment("stage A and B slices into shared memory (LDG+STS)")
        _stage_to_shared(kb, a_blocks[bid_m, kt], smem_a, num_threads, t)
        _stage_to_shared(kb, b_blocks[kt, bid_n], smem_b, num_threads, t)
        kb.sync()
        sm_a_quads = smem_a.tile((1, 4))  # [bm, bk/4] rows of 4 k-values
        for k4 in range(bk // 4):
            for ti in range(tm_count):
                # A fragment: lane li holds the 4 k-values of its row.
                row = wm * wtm + ti * 16 + qp_m * 8 + li
                kb.move(sm_a_quads[row, k4], a_frags[ti])
            for tj in range(tn_count):
                # B fragment: lane li holds the 4 k-values of its column.
                col = wn * wtn + tj * 16 + qp_n * 8 + li
                kb.move(smem_b.tile((4, 1))[k4, col], b_frags[tj])
            for ti in range(tm_count):
                for tj in range(tn_count):
                    kb.matmul(a_frags[ti], b_frags[tj], accs[(ti, tj)],
                              threads=quad_pairs)
        kb.sync()

    kb.comment("epilogue: write fp32 accumulators back as fp16")
    pos, quad = t % 4, (t // 16) % 2
    entries = []
    for (ti, tj), acc in accs.items():
        acc_rows = acc.tile((1, None))
        for i in (0, 1):
            row = bid_m * bm + wm * wtm + ti * 16 + qp_m * 8 + 2 * pos + i
            col = bid_n * bn + wn * wtn + tj * 16 + qp_n * 8 + 4 * quad
            entries.append((acc_rows[i, 0], row, col))
    site = EpilogueSite(kb, entries, c, vec=4)
    if epilogue is not None:
        epilogue(site)
    site.store()
    return kb.build()


def build_ampere_tc_gemm_pipelined(
    m: int,
    n: int,
    k: int,
    block_tile: Tuple[int, int, int] = (128, 128, 32),
    warp_grid: Tuple[int, int] = (2, 2),
    name: str = "graphene_gemm_sm86_pipelined",
    swizzle_a: Swizzle = IDENTITY_SWIZZLE,
    swizzle_b: Swizzle = IDENTITY_SWIZZLE,
) -> Kernel:
    """Double-buffered Tensor Core GEMM (software pipelining).

    The staple optimization of cuBLAS-class Ampere kernels: while the
    warps compute on one pair of shared-memory buffers, ``cp.async``
    copies the *next* K-slice into the other pair, overlapping global
    loads with Tensor Core math.  Expressed in Graphene as a 2x-unrolled
    K loop over two buffer pairs with a guarded prefetch.
    """
    validate_gemm_config(m, n, k, block_tile, warp_grid, stages=2)
    bm, bn, bk = block_tile
    wm_count, wn_count = warp_grid
    num_threads = wm_count * wn_count * 32
    mi_count = bm // (wm_count * 16)
    ni_count = bn // (wn_count * 8)
    ki_count = bk // 16
    k_slices = k // bk

    kb = KernelBuilder(name, (m // bm, n // bn), (num_threads,))
    a = kb.param("A", (m, k), FP16)
    b = kb.param("B", (k, n), FP16)
    c = kb.param("C", (m, n), FP16)
    bid_m, bid_n = kb.grid.indices()

    smem_a = [kb.alloc(f"smem_a{i}", (bm, bk), FP16, SH, swizzle=swizzle_a)
              for i in (0, 1)]
    smem_b = [kb.alloc(f"smem_b{i}", (bk, bn), FP16, SH, swizzle=swizzle_b)
              for i in (0, 1)]

    engine = WarpMmaEngine(kb, warp_grid, mi_count, ni_count)
    accs = engine.make_accumulators(init=0.0)
    t = engine.t

    a_blocks = a.tile((bm, bk))
    b_blocks = b.tile((bk, bn))

    def stage(kt_expr, buf):
        _stage_to_shared(kb, a_blocks[bid_m, kt_expr], smem_a[buf],
                         num_threads, t)
        _stage_to_shared(kb, b_blocks[kt_expr, bid_n], smem_b[buf],
                         num_threads, t)

    kb.comment("prologue: prefetch K-slice 0 into buffer pair 0")
    stage(Const(0), 0)
    with kb.loop("kt2", k_slices // 2, unroll=False) as kt2:
        kb.sync()
        kb.comment("prefetch the odd slice while computing the even one")
        stage(kt2 * 2 + 1, 1)
        engine.mma_pass(smem_a[0], smem_b[0], accs, ki_count)
        kb.sync()
        kb.comment("prefetch the next even slice (if any) while "
                   "computing the odd one")
        with kb.when([(kt2 * 2 + 2, Const(k_slices))]):
            stage(kt2 * 2 + 2, 0)
        engine.mma_pass(smem_a[1], smem_b[1], accs, ki_count)
    kb.sync()

    kb.comment("epilogue: write fp32 accumulators back as fp16")
    entries = engine.acc_entries(accs, bid_m * bm, bid_n * bn)
    site = EpilogueSite(kb, entries, c, vec=2)
    site.store()
    return kb.build()


def build(cfg: "GemmConfig") -> Kernel:
    """Canonical constructor over the shared config convention.

    Dispatches on ``cfg.variant`` (``ampere``, ``ampere_pipelined``,
    ``volta``); ``cfg.swizzled=True`` derives per-operand bank-spreading
    swizzles from the block tile's staging-row lengths via
    :func:`repro.tuner.space.swizzle_for_row`.
    """
    from .config import GemmConfig

    if not isinstance(cfg, GemmConfig):
        raise TypeError(f"expected GemmConfig, got {type(cfg).__name__}")
    builder = _VARIANT_BUILDERS.get(cfg.variant)
    if builder is None:
        raise ValueError(
            f"unknown GemmConfig.variant {cfg.variant!r} "
            f"(expected one of {sorted(_VARIANT_BUILDERS)})"
        )
    common = dict(block_tile=cfg.block_tile, warp_grid=cfg.warp_grid)
    if cfg.name is not None:
        common["name"] = cfg.name
    if cfg.swizzled:
        if cfg.variant not in _SWIZZLABLE_VARIANTS:
            raise ValueError(
                f"GemmConfig.swizzled is not supported for the "
                f"{cfg.variant} variant (its staging buffers use "
                "per-thread moves)"
            )
        from ..tuner.space import swizzle_for_row

        _bm, bn, bk = cfg.block_tile
        common["swizzle_a"] = swizzle_for_row(bk)
        common["swizzle_b"] = swizzle_for_row(bn)
    return builder(cfg, common)


#: ``GemmConfig.variant`` dispatch table — a lookup, not a name
#: comparison, so new variants slot in without editing ``build``.
_VARIANT_BUILDERS = {
    "ampere": lambda cfg, common: build_ampere_tc_gemm(
        cfg.m, cfg.n, cfg.k, use_ldmatrix=cfg.use_ldmatrix, **common),
    "ampere_pipelined": lambda cfg, common: build_ampere_tc_gemm_pipelined(
        cfg.m, cfg.n, cfg.k, **common),
    "volta": lambda cfg, common: build_volta_tc_gemm(
        cfg.m, cfg.n, cfg.k, qp_tile=cfg.qp_tile, **common),
}

#: Variants whose staging buffers accept bank-spreading swizzles.
_SWIZZLABLE_VARIANTS = frozenset({"ampere", "ampere_pipelined"})


def from_tuned(m: int, n: int, k: int, arch="ampere", **tune_kwargs) -> Kernel:
    """Build the GEMM kernel the autotuner selects for this problem.

    Runs (or serves from the persistent tuning cache) a
    :func:`repro.tuner.tune` search over the GEMM decomposition space
    and instantiates the winning configuration at full problem scale.
    Keyword arguments are forwarded to :func:`repro.tuner.tune`
    (``cache=False`` disables the on-disk cache, ``search=...`` picks
    the driver, ...).
    """
    from ..tuner import tune

    result = tune("gemm", {"m": m, "n": n, "k": k}, arch=arch,
                  **tune_kwargs)
    return result.build_kernel()
