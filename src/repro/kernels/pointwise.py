"""Pointwise and data-movement kernels for whole-network lowering.

The graph compiler (:mod:`repro.graph`) stitches networks out of the
figure kernels plus the small glue kernels here: standalone bias/
activation/residual epilogues (the *unfused* counterparts of the fused
Figure 10 epilogue), a transpose (materialising K^T for the unfused
attention baseline), the head split/merge shuffles around attention,
and the KV-cache append of the decode-serving scenario.

All of them are memory-bound element or chunk movers: one thread per
element (or per ``head_dim`` chunk), fp32 pointwise math, fp16
round-on-store — numerics that a numpy mirror reproduces bit-exactly.
"""

from __future__ import annotations

from ..frontend.builder import KernelBuilder
from ..ir.expr import Const, Var
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP16, FP32
from ..tensor.memspace import RF
from .config import (
    BiasActConfig, CacheAppendConfig, MergeHeadsConfig, SplitHeadsConfig,
    TransposeConfig,
)

#: Simulated per-block thread ceiling (the CUDA hardware limit).
MAX_THREADS = 1024


def build_bias_act(cfg: BiasActConfig) -> Kernel:
    """``Y = act(X + bias + R)``; one thread per element."""
    rows, cols = cfg.rows, cfg.cols
    if cols > MAX_THREADS:
        raise ValueError(f"cols={cols} exceeds the {MAX_THREADS}-thread block")
    if not (cfg.bias or cfg.activation or cfg.residual):
        raise ValueError("bias_act with no bias/activation/residual is a copy")
    kb = KernelBuilder(cfg.name, (rows,), (cols,))
    x = kb.param("X", (rows, cols), FP16)
    bias = kb.param("bias", (cols,), FP16) if cfg.bias else None
    res = kb.param("R", (rows, cols), FP16) if cfg.residual else None
    y = kb.param("Y", (rows, cols), FP16)
    r = kb.grid.indices()[0]
    t = Var("threadIdx.x")

    val = kb.alloc("pw_val", (1,), FP32, RF)
    x_el = x.tile((1, 1))
    y_el = y.tile((1, 1))
    kb.move(x_el[r, t], val)
    if bias is not None:
        kb.binary("add", val, bias.tile((1,))[t], val)
    if res is not None:
        kb.binary("add", val, res.tile((1, 1))[r, t], val)
    if cfg.activation is not None:
        kb.unary(cfg.activation, val, val)
    kb.move(val, y_el[r, t])
    return kb.build()


def build_transpose(cfg: TransposeConfig) -> Kernel:
    """``Y[c, r] = X[r, c]``; one thread per element of a source row."""
    rows, cols = cfg.rows, cfg.cols
    if cols > MAX_THREADS:
        raise ValueError(f"cols={cols} exceeds the {MAX_THREADS}-thread block")
    kb = KernelBuilder(cfg.name, (rows,), (cols,))
    x = kb.param("X", (rows, cols), FP16)
    y = kb.param("Y", (cols, rows), FP16)
    r = kb.grid.indices()[0]
    t = Var("threadIdx.x")
    val = kb.alloc("tr_val", (1,), FP16, RF)
    kb.move(x.tile((1, 1))[r, t], val)
    kb.move(val, y.tile((1, 1))[t, r])
    return kb.build()


def build_split_heads(cfg: SplitHeadsConfig) -> Kernel:
    """Unpack ``QKV [b*seq, 3*h]`` into per-head Q/K/V row bands.

    One block per (head, batch), one thread per sequence position; each
    thread moves three contiguous ``head_dim`` chunks.
    """
    b, heads, seq, hd = cfg.batch, cfg.heads, cfg.seq, cfg.head_dim
    if seq > MAX_THREADS:
        raise ValueError(f"seq={seq} exceeds the {MAX_THREADS}-thread block")
    hidden = heads * hd
    kb = KernelBuilder(cfg.name, (heads, b), (seq,))
    qkv = kb.param("QKV", (b * seq, 3 * hidden), FP16)
    outs = [kb.param(n, (b * heads * seq, hd), FP16) for n in ("Q", "K", "V")]
    h_i, b_i = kb.grid.indices()
    t = Var("threadIdx.x")

    qkv_chunks = qkv.tile((1, hd))
    src_row = b_i * seq + t
    dst_row = (b_i * heads + h_i) * seq + t
    for which, out in enumerate(outs):
        kb.move(qkv_chunks[src_row, Const(which * heads) + h_i],
                out.tile((1, None))[dst_row, 0])
    return kb.build()


def build_merge_heads(cfg: MergeHeadsConfig) -> Kernel:
    """Repack per-head ``O [b*heads*seq, hd]`` into ``[b*seq, hidden]``."""
    b, heads, seq, hd = cfg.batch, cfg.heads, cfg.seq, cfg.head_dim
    if seq > MAX_THREADS:
        raise ValueError(f"seq={seq} exceeds the {MAX_THREADS}-thread block")
    kb = KernelBuilder(cfg.name, (heads, b), (seq,))
    o = kb.param("O", (b * heads * seq, hd), FP16)
    y = kb.param("Y", (b * seq, heads * hd), FP16)
    h_i, b_i = kb.grid.indices()
    t = Var("threadIdx.x")
    src_row = (b_i * heads + h_i) * seq + t
    kb.move(o.tile((1, None))[src_row, 0],
            y.tile((1, hd))[b_i * seq + t, h_i])
    return kb.build()


def build_cache_append(cfg: CacheAppendConfig) -> Kernel:
    """Scatter one decode step's K/V head chunks into the KV cache.

    ``QKV`` row 0 holds the packed single-token projection; position
    ``pos`` of each head's ``context``-row cache band receives its K
    and V chunks.  One block per head, one thread per channel.
    """
    heads, hd, ctx, pos = cfg.heads, cfg.head_dim, cfg.context, cfg.pos
    if not 0 <= pos < ctx:
        raise ValueError(f"pos={pos} outside the {ctx}-row cache band")
    kb = KernelBuilder(cfg.name, (heads,), (hd,))
    qkv = kb.param("QKV", (cfg.qkv_rows, 3 * heads * hd), FP16)
    kc = kb.param("K_cache", (heads * ctx, hd), FP16)
    vc = kb.param("V_cache", (heads * ctx, hd), FP16)
    h_i = kb.grid.indices()[0]
    t = Var("threadIdx.x")

    qkv_el = qkv.tile((1, 1))
    val = kb.alloc("ca_val", (1,), FP16, RF)
    for which, dst in ((1, kc), (2, vc)):
        kb.move(qkv_el[0, (Const(which * heads) + h_i) * hd + t], val)
        kb.move(val, dst.tile((1, 1))[h_i * ctx + pos, t])
    return kb.build()
