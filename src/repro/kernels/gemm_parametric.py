"""GEMM with a parametric (symbolic) M dimension (paper Section 3.4).

Dynamic shapes matter for neural networks whose batch/sequence dims are
unknown at compile time.  The row count ``M`` here is a symbolic kernel
parameter: tiling over-approximates the row dimension and every access
to a potentially-partial tile is predicated, following the CuTe
over-approximation approach the paper adopts.

The kernel is deliberately simple (per-thread FMA, like Figure 8) so
the predication story stays visible; the grid covers ``ceil(M / tile)``
row tiles and the launch binds ``M`` at run time.
"""

from __future__ import annotations

from ..frontend.builder import KernelBuilder
from ..ir.expr import Var
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP16, DType
from ..tensor.memspace import GL
from ..tensor.tensor import Tensor
from ..layout.layout import Layout
from .config import ParametricGemmConfig


def build(cfg: ParametricGemmConfig) -> Kernel:
    """Canonical constructor over the shared config convention."""
    return build_parametric_gemm(cfg.n, cfg.k, row_tile=cfg.row_tile,
                                 max_grid_rows=cfg.max_grid_rows,
                                 threads=cfg.threads, dtype=cfg.dtype,
                                 name=cfg.name)


def from_tuned(n: int, k: int, arch: str = "ampere",
               **tune_kwargs) -> Kernel:
    """No parametric-GEMM tuning space is registered yet; returns the
    default config (kept so every kernel module exposes the same
    ``build``/``from_tuned`` pair)."""
    return build(ParametricGemmConfig(n, k))


def build_parametric_gemm(
    n: int,
    k: int,
    row_tile: int = 32,
    max_grid_rows: int = 64,
    threads: int = 128,
    dtype: DType = FP16,
    name: str = "graphene_gemm_parametric",
) -> Kernel:
    """``C[M, n] = A[M, k] @ B[k, n]`` with symbolic ``M``.

    The grid is sized for up to ``max_grid_rows`` row tiles; launches
    bind ``M`` (rows actually present).  Accesses to the ragged row
    dimension are guarded, so threads covering rows ``>= M`` neither
    read nor write out of bounds.
    """
    if n % threads:
        raise ValueError("threads must divide n for this decomposition")
    kb = KernelBuilder(name, (max_grid_rows,), (threads,))
    m = kb.symbol("M")
    a = Tensor("A", Layout((m, k), (k, 1)), dtype, GL)
    b = kb.param("B", (k, n), dtype)
    c = Tensor("C", Layout((m, n), (n, 1)), dtype, GL)
    kb._params.insert(0, a)
    kb._params.append(c)

    bid = kb.grid.indices()[0]
    t = Var("threadIdx.x")

    # Tile the symbolic row dimension: ceil(M / row_tile) tiles with
    # guards (Section 3.4); the grid over-approximates further.
    a_rows = a.tile((row_tile, None))[bid, 0]
    c_rows = c.tile((row_tile, None))[bid, 0]

    cols_per_thread = n // threads
    with kb.loop("r", row_tile) as r:
        with kb.loop("cc", cols_per_thread) as cc:
            col = cc * threads + t
            out = c_rows[r, col]
            kb.init(out, 0.0)
            with kb.loop("kk", k) as kk:
                kb.matmul(a_rows[r, kk], b[kk, col], out)
    return kb.build()
