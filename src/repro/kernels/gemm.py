"""The simple-but-complete GEMM kernel of paper Figure 8.

Every thread computes an ``rm x rn`` tile of C by walking the full K
dimension with scalar FMAs against global memory.  The decomposition
tiles C twice — once for thread-blocks, once for threads — and the
per-element MatMul spec matches the atomic ``hfma`` (paper Table 2).
This kernel is deliberately naive; the optimized pipeline lives in
:mod:`repro.kernels.gemm_optimized`.
"""

from __future__ import annotations

from ..frontend.builder import KernelBuilder
from ..specs.kernel import Kernel
from .config import NaiveGemmConfig


def build(cfg: NaiveGemmConfig) -> Kernel:
    """Build the Figure 8 kernel for ``C += A @ B``.

    ``cfg.grid`` and ``cfg.threads`` give the 2-D arrangement of blocks
    and of threads per block; the block tile is ``(m/grid_m, n/grid_n)``
    and the per-thread tile follows from the thread arrangement.
    """
    m, n, k, dtype = cfg.m, cfg.n, cfg.k, cfg.dtype
    grid, threads = cfg.grid, cfg.threads
    grid_m, grid_n = grid
    thr_m, thr_n = threads
    if m % grid_m or n % grid_n:
        raise ValueError("grid must evenly divide the problem")
    block_m, block_n = m // grid_m, n // grid_n
    if block_m % thr_m or block_n % thr_n:
        raise ValueError("threads must evenly divide the block tile")
    reg_m, reg_n = block_m // thr_m, block_n // thr_n

    kb = KernelBuilder("graphene_gemm_naive", grid, (thr_m, thr_n))
    a = kb.param("A", (m, k), dtype)
    b = kb.param("B", (k, n), dtype)
    c = kb.param("C", (m, n), dtype)

    bid_m, bid_n = kb.grid.indices()
    tid_m, tid_n = kb.block.indices()

    # Tile for thread-blocks (paper Figure 8 lines 12-18).
    a_blk = a.tile((block_m, None))[bid_m, 0]
    b_blk = b.tile((None, block_n))[0, bid_n]
    c_blk = c.tile((block_m, block_n))[bid_m, bid_n]

    # Tile for threads (lines 20-26).
    a_thr = a_blk.tile((reg_m, None))[tid_m, 0]
    b_thr = b_blk.tile((None, reg_n))[0, tid_n]
    c_thr = c_blk.tile((reg_m, reg_n))[tid_m, tid_n]

    with kb.loop("k", k) as kv:
        with kb.loop("m", reg_m) as mv:
            with kb.loop("n", reg_n) as nv:
                kb.matmul(a_thr[mv, kv], b_thr[kv, nv], c_thr[mv, nv])
    return kb.build()


def from_tuned(m: int, n: int, k: int, arch: str = "ampere",
               **tune_kwargs) -> Kernel:
    """The naive GEMM is the untuned Figure 8 baseline by definition;
    no tuning space is registered, so this returns the default config
    (kept so every kernel module exposes the same ``build``/
    ``from_tuned`` pair).  Tuned GEMMs come from
    :func:`repro.kernels.gemm_optimized.from_tuned`.
    """
    return build(NaiveGemmConfig(m, n, k))
