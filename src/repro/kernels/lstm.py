"""Fused simplified-LSTM-cell kernel (paper Figure 12).

The cell computes ``y = act((x @ W) + (h @ R) + bias)`` — two
independent GEMMs, an addition, a bias addition and an activation.
Libraries need between two (cuBLASLt accumulating) and five (cuBLAS +
cuDNN per node) kernels; Graphene fuses everything into one by
accumulating both GEMMs into the same register fragments.
"""

from __future__ import annotations

from typing import Tuple

from ..frontend.builder import KernelBuilder
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP16
from ..tensor.memspace import SH
from .config import LstmConfig
from .gemm_optimized import _stage_to_shared
from .tc_common import WarpMmaEngine


def build(cfg: LstmConfig) -> Kernel:
    """Canonical constructor over the shared config convention."""
    return build_fused_lstm_cell(cfg.m, cfg.n, cfg.k,
                                 block_tile=cfg.block_tile,
                                 warp_grid=cfg.warp_grid,
                                 activation=cfg.activation, name=cfg.name)


def from_tuned(m: int, n: int, k: int, arch: str = "ampere",
               **tune_kwargs) -> Kernel:
    """No LSTM tuning space is registered yet; returns the default
    config (kept so every kernel module exposes the same ``build``/
    ``from_tuned`` pair)."""
    return build(LstmConfig(m, n, k))


def build_fused_lstm_cell(
    m: int,
    n: int,
    k: int,
    block_tile: Tuple[int, int, int] = (128, 128, 32),
    warp_grid: Tuple[int, int] = (2, 2),
    activation: str = "relu",
    name: str = "graphene_fused_lstm",
) -> Kernel:
    """One kernel for ``Y = act(X @ W + H @ R + bias)``.

    The paper uses ReLU instead of tanh so library baselines exist;
    ``activation`` accepts any registered unary op (including tanh,
    which no library kernel provides — Graphene is not limited to the
    library's menu).
    """
    bm, bn, bk = block_tile
    wm_count, wn_count = warp_grid
    num_threads = wm_count * wn_count * 32
    mi_count = bm // (wm_count * 16)
    ni_count = bn // (wn_count * 8)
    ki_count = bk // 16
    if m % bm or n % bn or k % bk:
        raise ValueError("block tile must divide the problem size")

    kb = KernelBuilder(name, (m // bm, n // bn), (num_threads,))
    x = kb.param("X", (m, k), FP16)
    w = kb.param("W", (k, n), FP16)
    h = kb.param("H", (m, k), FP16)
    r = kb.param("R", (k, n), FP16)
    bias = kb.param("bias", (n,), FP16)
    y = kb.param("Y", (m, n), FP16)
    bid_m, bid_n = kb.grid.indices()

    smem_a = kb.alloc("smem_a", (bm, bk), FP16, SH)
    smem_b = kb.alloc("smem_b", (bk, bn), FP16, SH)

    engine = WarpMmaEngine(kb, warp_grid, mi_count, ni_count)
    accs = engine.make_accumulators(init=0.0)
    t = engine.t

    for label, lhs, rhs in (("X @ W", x, w), ("H @ R", h, r)):
        kb.comment(f"accumulate {label} into the shared fragments")
        lhs_blocks = lhs.tile((bm, bk))
        rhs_blocks = rhs.tile((bk, bn))
        with kb.loop(f"kt_{label[0].lower()}", k // bk, unroll=False) as kt:
            _stage_to_shared(kb, lhs_blocks[bid_m, kt], smem_a, num_threads, t)
            _stage_to_shared(kb, rhs_blocks[kt, bid_n], smem_b, num_threads, t)
            kb.sync()
            engine.mma_pass(smem_a, smem_b, accs, ki_count)
            kb.sync()

    kb.comment(f"fused epilogue: + bias, {activation}, store")
    bias_vecs = bias.tile((2,))
    y_pairs = y.tile((1, 2))
    for view, row, col in engine.acc_entries(accs, bid_m * bm, bid_n * bn):
        kb.binary("add", view, bias_vecs[col // 2], view)
        kb.unary(activation, view, view)
        kb.move(view, y_pairs[row, col // 2])
    return kb.build()
