"""Hopper (SM90) warpgroup kernels: FP8 GEMM and 2:4 sparse GEMM.

Both families use the Hopper-generation atomics behind
``architecture("hopper")``:

* **TMA staging** — each K-slice of the operands moves global-to-shared
  as one ``cp.async.bulk.tensor`` Move per tile (label ``"tma ..."``),
  bypassing the register file; the barrier after staging awaits the
  bulk copies.
* **warpgroup mma** — one ``wgmma.mma_async.m64n64kX`` per K-chunk: the
  whole 128-thread block multiplies a ``64 x X`` A tile against an
  ``X x 64`` B tile straight out of shared memory, accumulating into
  per-lane fp32 register fragments.
* The FP8 kernel follows the *2x-accumulation* recipe of Hopper fp8
  GEMMs: wgmma accumulates each K-slice into a zeroed partial tile, and
  a separate fp32 add folds the partial into the running accumulator —
  bounding the error growth of long fp8 dot products.
* The sparse kernel stores A in 2:4-compressed form (``(m, k/2)``
  values plus ``(m, k/2)`` column-index metadata), expands each staged
  slice to dense in shared memory with the ``sparse24.decompress``
  atomic, and feeds the dense tile to the f16 wgmma.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..frontend.builder import KernelBuilder
from ..ir.expr import Var
from ..specs.base import GenericSpec
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP8E4M3, FP16, FP32, INT32, DType
from ..tensor.memspace import RF, SH
from .config import HopperFp8GemmConfig, Sparse24GemmConfig

#: wgmma output tile per block (m64n64 is the one instruction shape the
#: atomic table models); the fp8/f16 instruction K-depths.
WG_M, WG_N = 64, 64
WG_K_FP8 = 32
WG_K_F16 = 16


def validate_hopper_gemm_config(m: int, n: int, k: int, block_k: int,
                                chunk_k: int, sparse: bool = False) -> None:
    """Check a warpgroup GEMM decomposition against a problem shape."""
    problems = []
    if block_k <= 0 or block_k % chunk_k:
        problems.append(
            f"block_k={block_k} must be a positive multiple of the "
            f"wgmma K-depth {chunk_k}"
        )
    if m % WG_M:
        problems.append(f"M={m} is not divisible by the wgmma tile M={WG_M}")
    if n % WG_N:
        problems.append(f"N={n} is not divisible by the wgmma tile N={WG_N}")
    if block_k > 0 and k % block_k:
        problems.append(f"K={k} is not divisible by block_k={block_k}")
    if sparse and block_k % 4:
        problems.append(
            f"block_k={block_k} must cover whole 2:4 groups of four"
        )
    if problems:
        raise ValueError(
            f"invalid Hopper GEMM configuration for {m}x{n}x{k}: "
            + "; ".join(problems)
        )


def _wgmma_epilogue(kb: KernelBuilder, acc, c, bid_m, bid_n) -> None:
    """Store the (4, 8) per-lane wgmma accumulator as fp16 pairs.

    Register ``r = rr + 4*nb`` holds C element
    ``(16*warp + group + 8*(rr//2), 8*nb + 2*tig + rr%2)`` (the
    ``wgmma_c_coord`` fragment map), so registers ``(2q, nb)`` and
    ``(2q+1, nb)`` are a contiguous fp16 pair in C.
    """
    t = Var("threadIdx.x")
    warp = t // 32
    lane = t % 32
    group = lane // 4
    tig = lane % 4
    acc_pairs = acc.tile((2, 1))
    c_vecs = c.tile((1, 2))
    for q in (0, 1):
        row = bid_m * WG_M + warp * 16 + group + 8 * q
        for nb in range(WG_N // 8):
            colv = bid_n * (WG_N // 2) + nb * 4 + tig
            kb.move(acc_pairs[q, nb], c_vecs[row, colv])


def build_hopper_fp8_gemm(
    m: int,
    n: int,
    k: int,
    block_k: int = 64,
    two_stage_acc: bool = True,
    in_dtype: DType = FP8E4M3,
    name: str = "graphene_gemm_fp8_sm90",
) -> Kernel:
    """FP8 warpgroup GEMM: ``C = A @ B`` (e4m3 in, fp32 accum, fp16 out).

    One warpgroup (128 threads) per block owns a 64x64 C tile and walks
    K in ``block_k``-deep TMA-staged slices, issuing one
    ``wgmma.m64n64k32`` per 32-deep chunk.  ``two_stage_acc=True`` adds
    the 2x-accumulation stage (partial tile per K-slice, folded into
    the running fp32 accumulator with a separate add).
    """
    validate_hopper_gemm_config(m, n, k, block_k, WG_K_FP8)
    kb = KernelBuilder(name, (m // WG_M, n // WG_N), (128,))
    a = kb.param("A", (m, k), in_dtype)
    b = kb.param("B", (k, n), in_dtype)
    c = kb.param("C", (m, n), FP16)
    bid_m, bid_n = kb.grid.indices()

    smem_a = kb.alloc("smem_a", (WG_M, block_k), in_dtype, SH)
    smem_b = kb.alloc("smem_b", (block_k, WG_N), in_dtype, SH)
    wg = kb.block.tile([128])

    acc = kb.alloc("acc", (4, 8), FP32, RF)
    kb.init(acc, 0.0)
    partial = kb.alloc("partial", (4, 8), FP32, RF) if two_stage_acc else None

    a_blocks = a.tile((WG_M, block_k))
    b_blocks = b.tile((block_k, WG_N))
    sm_a_chunks = smem_a.tile((WG_M, WG_K_FP8))
    sm_b_chunks = smem_b.tile((WG_K_FP8, WG_N))

    with kb.loop("kt", k // block_k, unroll=False) as kt:
        kb.comment("TMA: bulk-copy the A and B K-slices into shared memory")
        kb.move(a_blocks[bid_m, kt], smem_a, threads=wg, label="tma A slice")
        kb.move(b_blocks[kt, bid_n], smem_b, threads=wg, label="tma B slice")
        kb.sync()
        target = partial if two_stage_acc else acc
        if two_stage_acc:
            kb.comment("2x accumulation: zero the per-slice partial tile")
            kb.init(partial, 0.0)
        for kc in range(block_k // WG_K_FP8):
            kb.matmul(sm_a_chunks[0, kc], sm_b_chunks[kc, 0], target,
                      threads=wg, label="wgmma fp8")
        if two_stage_acc:
            kb.binary("add", acc, partial, acc)
        kb.sync()

    kb.comment("epilogue: write fp32 accumulators back as fp16")
    _wgmma_epilogue(kb, acc, c, bid_m, bid_n)
    return kb.build()


def build_hopper_sparse24_gemm(
    m: int,
    n: int,
    k: int,
    block_k: int = 32,
    name: str = "graphene_gemm_sparse24_sm90",
) -> Kernel:
    """2:4 structured-sparse warpgroup GEMM.

    A is stored compressed: ``A_comp`` holds the two surviving values of
    every group of four K-columns, ``A_meta`` their column indices
    (ascending, in 0..3).  Each TMA-staged slice is expanded to a dense
    shared-memory tile by the ``sparse24.decompress`` atomic and fed to
    the f16 ``wgmma.m64n64k16``.
    """
    validate_hopper_gemm_config(m, n, k, block_k, WG_K_F16, sparse=True)
    kb = KernelBuilder(name, (m // WG_M, n // WG_N), (128,))
    a_comp = kb.param("A_comp", (m, k // 2), FP16)
    a_meta = kb.param("A_meta", (m, k // 2), INT32)
    b = kb.param("B", (k, n), FP16)
    c = kb.param("C", (m, n), FP16)
    bid_m, bid_n = kb.grid.indices()

    half_bk = block_k // 2
    smem_comp = kb.alloc("smem_comp", (WG_M, half_bk), FP16, SH)
    smem_meta = kb.alloc("smem_meta", (WG_M, half_bk), INT32, SH)
    smem_dense = kb.alloc("smem_dense", (WG_M, block_k), FP16, SH)
    smem_b = kb.alloc("smem_b", (block_k, WG_N), FP16, SH)
    wg = kb.block.tile([128])

    acc = kb.alloc("acc", (4, 8), FP32, RF)
    kb.init(acc, 0.0)

    comp_blocks = a_comp.tile((WG_M, half_bk))
    meta_blocks = a_meta.tile((WG_M, half_bk))
    b_blocks = b.tile((block_k, WG_N))
    dense_chunks = smem_dense.tile((WG_M, WG_K_F16))
    sm_b_chunks = smem_b.tile((WG_K_F16, WG_N))

    with kb.loop("kt", k // block_k, unroll=False) as kt:
        kb.comment("TMA: bulk-copy compressed A, metadata and B slices")
        kb.move(comp_blocks[bid_m, kt], smem_comp, threads=wg,
                label="tma A compressed")
        kb.move(meta_blocks[bid_m, kt], smem_meta, threads=wg,
                label="tma A metadata")
        kb.move(b_blocks[kt, bid_n], smem_b, threads=wg, label="tma B slice")
        kb.sync()
        kb.comment("expand the 2:4-compressed slice to a dense smem tile")
        kb.spec(GenericSpec(
            [smem_comp, smem_meta], [smem_dense],
            (kb.grid.scalar(), wg), label="sparse24 decompress",
        ))
        kb.sync()
        for kc in range(block_k // WG_K_F16):
            kb.matmul(dense_chunks[0, kc], sm_b_chunks[kc, 0], acc,
                      threads=wg, label="wgmma f16")
        kb.sync()

    kb.comment("epilogue: write fp32 accumulators back as fp16")
    _wgmma_epilogue(kb, acc, c, bid_m, bid_n)
    return kb.build()


# -- host-side 2:4 helpers -----------------------------------------------------
def compress_24(dense: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Compress a dense ``(m, k)`` matrix into 2:4 form.

    Keeps the two largest-magnitude values of every group of four
    columns (ties resolve to the lower column index, matching cuSPARSELt
    pruning).  Returns ``(values, metadata)``, both ``(m, k/2)``;
    metadata entries are the ascending column indices in 0..3.
    """
    dense = np.asarray(dense)
    m, k = dense.shape
    if k % 4:
        raise ValueError(f"K={k} must cover whole groups of four")
    groups = dense.reshape(m, k // 4, 4)
    order = np.argsort(
        np.abs(groups), axis=2, kind="stable")[:, :, ::-1][:, :, :2]
    idx = np.sort(order, axis=2)
    values = np.take_along_axis(groups, idx, axis=2)
    comp = values.reshape(m, k // 2).astype(dense.dtype)
    meta = idx.reshape(m, k // 2).astype(np.int32)
    return comp, meta


def decompress_24(comp: np.ndarray, meta: np.ndarray) -> np.ndarray:
    """Numpy reference for :func:`compress_24` / the decompress atomic."""
    comp = np.asarray(comp)
    meta = np.asarray(meta)
    m, half_k = comp.shape
    validate_24_metadata(meta)
    dense = np.zeros((m, 2 * half_k), dtype=comp.dtype)
    rows = np.arange(m)[:, None]
    groups = np.arange(half_k // 2)[None, :]
    dense[rows, 4 * groups + meta[:, 0::2]] = comp[:, 0::2]
    dense[rows, 4 * groups + meta[:, 1::2]] = comp[:, 1::2]
    return dense


def validate_24_metadata(meta: np.ndarray) -> None:
    """Raise if a 2:4 metadata tensor is malformed."""
    meta = np.asarray(meta)
    if meta.shape[-1] % 2:
        raise ValueError("2:4 metadata must pair two indices per group")
    if np.any(meta < 0) or np.any(meta > 3):
        raise ValueError("2:4 metadata indices must be in 0..3")
    if np.any(meta[..., 0::2] >= meta[..., 1::2]):
        raise ValueError(
            "2:4 metadata must name two distinct ascending columns per "
            "group of four"
        )


def random_sparse24(rng, m: int, k: int, dtype=np.float16
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A random 2:4-sparse matrix as ``(values, metadata, dense)``."""
    comp = rng.standard_normal((m, k // 2)).astype(dtype)
    choices = np.array(
        [(i, j) for i in range(4) for j in range(i + 1, 4)], dtype=np.int32
    )
    picks = rng.integers(0, len(choices), size=(m, k // 4))
    meta = choices[picks].reshape(m, k // 2)
    return comp, meta, decompress_24(comp, meta)


# -- config-convention constructors --------------------------------------------
def build_fp8(cfg: HopperFp8GemmConfig) -> Kernel:
    if not isinstance(cfg, HopperFp8GemmConfig):
        raise TypeError(
            f"expected HopperFp8GemmConfig, got {type(cfg).__name__}"
        )
    kwargs = {} if cfg.name is None else {"name": cfg.name}
    return build_hopper_fp8_gemm(
        cfg.m, cfg.n, cfg.k, block_k=cfg.block_k,
        two_stage_acc=cfg.two_stage_acc, **kwargs,
    )


def build_sparse24(cfg: Sparse24GemmConfig) -> Kernel:
    if not isinstance(cfg, Sparse24GemmConfig):
        raise TypeError(
            f"expected Sparse24GemmConfig, got {type(cfg).__name__}"
        )
    kwargs = {} if cfg.name is None else {"name": cfg.name}
    return build_hopper_sparse24_gemm(
        cfg.m, cfg.n, cfg.k, block_k=cfg.block_k, **kwargs,
    )


def from_tuned(family: str, m: int, n: int, k: int, arch="hopper",
               **tune_kwargs) -> Kernel:
    """Build the Hopper kernel the autotuner selects for this problem."""
    from ..tuner import tune

    result = tune(family, {"m": m, "n": n, "k": k}, arch=arch, **tune_kwargs)
    return result.build_kernel()
