"""Fused Multi-Head Attention (paper Figure 14).

Attention is two back-to-back GEMMs with a softmax in between:

    O = softmax(Q @ K^T / sqrt(d)) @ V        (per batch*head)

Graphene fuses everything into one kernel, following the strategy of
NVIDIA's MLPerf BERT kernels: each thread-block owns one (batch, head)
and a tile of query rows; the score tile S lives entirely in shared
memory (fp32), softmax normalises it in place, and the P @ V product
accumulates in registers.  K and V are streamed through shared memory in
sequence-chunks so the shared-memory footprint stays bounded.

Note the Q @ K^T product reads its B operand from the *row-major K
tile* using plain (non-transposed) ldmatrix — the layout flexibility the
paper's tensor/thread tiling is designed to express.
"""

from __future__ import annotations

from ..frontend.builder import KernelBuilder
from ..ir.expr import Const, Var
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP16, FP32
from ..tensor.memspace import RF, SH
from .config import DecodeFmhaConfig, FmhaConfig
from .gemm_optimized import _stage_to_shared
from .tc_common import WarpMmaEngine


def build(cfg: FmhaConfig) -> Kernel:
    """Canonical constructor over the shared config convention."""
    return build_fused_fmha(cfg.batch_heads, cfg.seq, cfg.head_dim,
                            q_tile=cfg.q_tile, kv_chunk=cfg.kv_chunk,
                            name=cfg.name)


def from_tuned(batch_heads: int, seq: int, head_dim: int,
               arch: str = "ampere", **tune_kwargs) -> Kernel:
    """No FMHA tuning space is registered yet; returns the default
    config (kept so every kernel module exposes the same ``build``/
    ``from_tuned`` pair)."""
    return build(FmhaConfig(batch_heads, seq, head_dim))


def build_fused_fmha(
    batch_heads: int,
    seq: int,
    head_dim: int,
    q_tile: int = 16,
    kv_chunk: int = 64,
    name: str = "graphene_fused_fmha",
) -> Kernel:
    """One fused kernel for ``O = softmax(Q K^T / sqrt(d)) V``.

    ``Q/K/V/O`` are ``[batch_heads * seq, head_dim]`` fp16 (each
    consecutive ``seq``-row band is one head).  Each block handles one
    head and ``q_tile`` query rows with a single warp.
    """
    if q_tile != 16:
        raise ValueError("the single-warp decomposition uses 16 query rows")
    if seq % kv_chunk or kv_chunk % 16 or head_dim % 16:
        raise ValueError("seq/kv_chunk/head_dim must tile into mma shapes")
    scale = 1.0 / float(head_dim) ** 0.5
    num_threads = 32

    kb = KernelBuilder(name, (seq // q_tile, batch_heads), (num_threads,))
    q = kb.param("Q", (batch_heads * seq, head_dim), FP16)
    k = kb.param("K", (batch_heads * seq, head_dim), FP16)
    v = kb.param("V", (batch_heads * seq, head_dim), FP16)
    o = kb.param("O", (batch_heads * seq, head_dim), FP16)
    qt, bh = kb.grid.indices()
    t = Var("threadIdx.x")

    smem_q = kb.alloc("smem_q", (q_tile, head_dim), FP16, SH)
    smem_kv = kb.alloc("smem_kv", (kv_chunk, head_dim), FP16, SH)
    smem_s = kb.alloc("smem_s", (q_tile, seq), FP32, SH)
    smem_p = kb.alloc("smem_p", (q_tile, seq), FP16, SH)

    kb.comment("stage this block's query tile")
    q_tiles = q.tile((q_tile, None))
    _stage_to_shared(kb, q_tiles[bh * (seq // q_tile) + qt, 0], smem_q,
                     num_threads, t)
    kb.sync()

    # S = Q @ K^T: B operand read from row-major K with plain ldmatrix.
    s_engine = WarpMmaEngine(kb, (1, 1), mi_count=1,
                             ni_count=kv_chunk // 8, prefix="s_")
    s_accs = s_engine.make_accumulators(init=None)
    kv_rows = k.tile((kv_chunk, None))
    sm_s_pairs = smem_s.tile((1, 2))
    for ci in range(seq // kv_chunk):
        kb.comment(f"score chunk {ci}: stage K rows, Q @ K^T")
        _stage_to_shared(kb, kv_rows[bh * (seq // kv_chunk) + ci, 0],
                         smem_kv, num_threads, t)
        s_engine.init_accumulators(s_accs, 0.0)
        kb.sync()
        s_engine.mma_pass(smem_q, smem_kv, s_accs,
                          ki_count=head_dim // 16, b_layout="nk")
        for view, row, col in s_engine.acc_entries(s_accs, 0, 0):
            kb.move(view, sm_s_pairs[row, Const(ci * kv_chunk // 2) + col // 2])
        kb.sync()

    kb.comment("softmax over the score rows (one thread per query row)")
    s_rows = smem_s.tile((1, None))
    p_rows = smem_p.tile((1, None))
    vals = kb.alloc("fmha_row", (seq,), FP32, RF)
    rmax = kb.alloc("fmha_max", (1,), FP32, RF)
    rsum = kb.alloc("fmha_sum", (1,), FP32, RF)
    scale_t = kb.alloc("fmha_scale", (1,), FP32, RF)
    kb.init(scale_t, scale)
    with kb.when([(t, Const(q_tile))]):
        kb.move(s_rows[t, 0], vals)
        kb.binary("mul", vals, scale_t, vals)
        kb.reduce("max", vals, rmax)
        kb.binary("sub", vals, rmax, vals)
        kb.unary("exp", vals, vals)
        kb.reduce("add", vals, rsum)
        kb.binary("div", vals, rsum, vals)
        kb.move(vals, p_rows[t, 0])
    kb.sync()

    kb.comment("O = P @ V, accumulated over value chunks")
    o_engine = WarpMmaEngine(kb, (1, 1), mi_count=1,
                             ni_count=head_dim // 8, prefix="o_")
    o_accs = o_engine.make_accumulators(init=0.0)
    v_rows = v.tile((kv_chunk, None))
    for ci in range(seq // kv_chunk):
        kb.comment(f"output chunk {ci}: stage V rows, P @ V")
        _stage_to_shared(kb, v_rows[bh * (seq // kv_chunk) + ci, 0],
                         smem_kv, num_threads, t)
        kb.sync()
        o_engine.mma_pass(smem_p, smem_kv, o_accs,
                          ki_count=kv_chunk // 16,
                          k_tile_offset=ci * kv_chunk // 16,
                          b_k_tile_offset=0)
        kb.sync()

    kb.comment("write the output tile")
    o_pairs = o.tile((1, 2))
    row_base = (bh * seq) + qt * q_tile
    for view, row, col in o_engine.acc_entries(o_accs, row_base, 0):
        kb.move(view, o_pairs[row, col // 2])
    return kb.build()


def build_decode_fmha(cfg: DecodeFmhaConfig) -> Kernel:
    """Single-query attention over a KV cache (the serving decode step).

    ``O[h] = softmax(q_h K_h^T / sqrt(d)) V_h`` with one cached K/V row
    per position: batch-1, long-context, memory-bound.  One block per
    head; thread ``t`` computes the score against cache position ``t``
    (and output channel ``t`` in the value pass).  The query row is
    read directly from row 0 of the packed QKV projection output, so
    the decode path needs no separate Q-extract kernel.
    """
    heads, ctx, hd = cfg.heads, cfg.context, cfg.head_dim
    if ctx < hd:
        raise ValueError("context must cover head_dim (one thread per "
                         "position doubles as one per output channel)")
    if ctx > 1024:
        raise ValueError("context exceeds the 1024-thread block")
    scale = 1.0 / float(hd) ** 0.5

    kb = KernelBuilder(cfg.name, (heads,), (ctx,))
    qkv = kb.param("QKV", (cfg.qkv_rows, 3 * heads * hd), FP16)
    kc = kb.param("K_cache", (heads * ctx, hd), FP16)
    vc = kb.param("V_cache", (heads * ctx, hd), FP16)
    o = kb.param("O", (heads, hd), FP16)
    h_i = kb.grid.indices()[0]
    t = Var("threadIdx.x")

    smem_s = kb.alloc("dec_s", (ctx,), FP32, SH)
    smem_p = kb.alloc("dec_p", (ctx,), FP16, SH)

    kb.comment("scores: thread t owns cache position t")
    qvec = kb.alloc("dec_q", (hd,), FP32, RF)
    kvec = kb.alloc("dec_k", (hd,), FP32, RF)
    sval = kb.alloc("dec_sval", (1,), FP32, RF)
    scale_t = kb.alloc("dec_scale", (1,), FP32, RF)
    kb.init(scale_t, scale)
    kb.move(qkv.tile((1, hd))[0, h_i], qvec)
    kb.move(kc.tile((1, None))[h_i * ctx + t, 0], kvec)
    kb.binary("mul", qvec, kvec, kvec)
    kb.reduce("add", kvec, sval)
    kb.binary("mul", sval, scale_t, sval)
    kb.move(sval, smem_s.tile((1,))[t])
    kb.sync()

    kb.comment("softmax over the context scores (single thread)")
    vals = kb.alloc("dec_row", (ctx,), FP32, RF)
    rmax = kb.alloc("dec_max", (1,), FP32, RF)
    rsum = kb.alloc("dec_sum", (1,), FP32, RF)
    with kb.when([(t, Const(1))]):
        kb.move(smem_s, vals)
        kb.reduce("max", vals, rmax)
        kb.binary("sub", vals, rmax, vals)
        kb.unary("exp", vals, vals)
        kb.reduce("add", vals, rsum)
        kb.binary("div", vals, rsum, vals)
        kb.move(vals, smem_p)
    kb.sync()

    kb.comment("value pass: thread t owns output channel t")
    vvec = kb.alloc("dec_v", (ctx,), FP32, RF)
    pvec = kb.alloc("dec_pv", (ctx,), FP32, RF)
    oval = kb.alloc("dec_oval", (1,), FP32, RF)
    v_head = vc.tile((ctx, None))
    with kb.when([(t, Const(hd))]):
        kb.move(v_head[h_i, 0].tile((None, 1))[0, t], vvec)
        kb.move(smem_p, pvec)
        kb.binary("mul", pvec, vvec, pvec)
        kb.reduce("add", pvec, oval)
        kb.move(oval, o.tile((1, 1))[h_i, t])
    return kb.build()
