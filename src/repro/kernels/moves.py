"""Optimized data-movement kernels, including the paper's Figure 1.

``build_ldmatrix_kernel`` reproduces the running example of paper
Section 2: a warp moves a 16x16 fp16 shared-memory tile into 2x4
registers per thread with a single ``ldmatrix`` instruction, expressed by
tiling the warp into 2x2 logical groups of 8 threads and assigning each
group an 8x8 data tile.
"""

from __future__ import annotations

import numpy as np

from ..frontend.builder import KernelBuilder
from ..layout.layout import Layout
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP16
from ..tensor.memspace import RF, SH
from .config import LdmatrixMoveConfig


def build(cfg: LdmatrixMoveConfig) -> Kernel:
    """Canonical constructor over the shared config convention."""
    return build_ldmatrix_kernel(name=cfg.name)


def from_tuned(arch: str = "ampere", **tune_kwargs) -> Kernel:
    """The ldmatrix reference kernel has nothing to tune; returns the
    default config (kept so every kernel module exposes the same
    ``build``/``from_tuned`` pair)."""
    return build(LdmatrixMoveConfig())


def build_ldmatrix_kernel(name: str = "ldmatrix_move") -> Kernel:
    """GL -> SH -> (ldmatrix) RF -> GL round trip for one warp.

    The kernel stages a 16x16 fp16 tensor into shared memory, performs
    the Figure 1d decomposed warp-level Move into registers, and dumps
    each thread's 8 register values to ``out[thread]`` so tests can
    observe the prescribed data-to-thread mapping.
    """
    kb = KernelBuilder(name, (1,), (32,))
    src = kb.param("src", (16, 16), FP16)
    out = kb.param("out", (32, 8), FP16)

    smem = kb.alloc("smem", (16, 16), FP16, mem=SH)
    tid = kb.block.indices()[0]

    # Stage global -> shared: each thread copies one contiguous 8-vector.
    src_vec = src.with_layout(Layout(256, 1)).tile((8,))[tid]
    smem_vec = smem.with_layout(Layout(256, 1)).tile((8,))[tid]
    kb.move(src_vec, smem_vec)
    kb.sync()

    # Figure 1d: tile the warp into 2x2 groups of 8 threads.
    groups = kb.block.tile([8]).reshape((2, 2))
    grp_m, grp_n = groups.indices()
    local = groups.local_index()

    # Tile shared memory into four 8x8 tiles, one per group; each thread
    # points at one row of its group's tile (Figure 1a).
    tiles = smem.tile((8, 8))
    row = tiles[grp_m, grp_n].tile((1, None))[local, 0]

    # Destination: 2x4 registers per thread, tiled into 2x2 pairs
    # (Figure 1b); this Move matches the atomic ldmatrix.x4 spec.
    regs = kb.alloc("regs", (2, 4), FP16, mem=RF)
    kb.move(row, regs.tile((1, 2)), threads=kb.block)

    # Dump registers so the mapping is observable.
    kb.move(regs, out.tile((1, None))[tid, 0])
    return kb.build()


def ldmatrix_lane_values(src: np.ndarray, lane: int) -> set:
    """The (unordered) values lane ``lane`` must receive — Figure 1b.

    Two adjacent values per 8x8 tile: row ``lane/4``, columns
    ``2*(lane%4)`` and ``+1`` of each of the four tiles.
    """
    values = set()
    for tm in range(2):
        for tn in range(2):
            tile = src[8 * tm:8 * tm + 8, 8 * tn:8 * tn + 8]
            row, col = lane // 4, 2 * (lane % 4)
            values.add(float(tile[row, col]))
            values.add(float(tile[row, col + 1]))
    return values


def ldmatrix_reference(src: np.ndarray) -> np.ndarray:
    """The exact (32, 8) dump produced by ``build_ldmatrix_kernel``.

    Matrix ``q`` of the PTX instruction is sourced by lanes
    ``8q..8q+7``, which under the kernel's 2x2 row-major group
    arrangement is the logical 8x8 tile ``(q/2, q%2)``; lane ``l``
    receives its two values of matrix ``q`` in destination register
    tile ``q`` ([2,2] colex), and the dump walks the 2x4 register file
    colexicographically.
    """
    out = np.zeros((32, 8), dtype=src.dtype)
    for lane in range(32):
        by_offset = np.zeros(8, dtype=src.dtype)
        for q in range(4):
            tm, tn = q // 2, q % 2
            tile = src[8 * tm:8 * tm + 8, 8 * tn:8 * tn + 8]
            for j in (0, 1):
                offset = 4 * (q % 2) + 2 * (q // 2) + j
                by_offset[offset] = tile[lane // 4, 2 * (lane % 4) + j]
        out[lane] = [by_offset[4 * (i % 2) + i // 2] for i in range(8)]
    return out
