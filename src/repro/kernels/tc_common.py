"""Shared Tensor Core machinery for SM86 fused kernels.

:class:`WarpMmaEngine` packages the fragment thread-groups, register
allocations, ldmatrix loads and mma issue loop that every Ampere kernel
in this repo uses (GEMM, fused MLP/LSTM, FMHA).  A kernel instantiates
one engine per logical GEMM and runs :meth:`mma_pass` over
shared-memory operand tiles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..frontend.builder import KernelBuilder
from ..ir.expr import IntExpr, Var
from ..tensor.dtypes import FP16, FP32
from ..tensor.memspace import RF
from ..tensor.tensor import Tensor
from ..threads.threadgroup import warp as make_warp


class WarpMmaEngine:
    """Warp-level m16n8k16 Tensor Core pipeline for one logical GEMM.

    The engine's warps tile an ``(mi_count*16) x (ni_count*8)`` output
    per warp; ``warp_grid`` arranges warps over the block tile
    column-major (warp w covers warp-tile ``(w % wm, w // wm)``).
    """

    def __init__(
        self,
        kb: KernelBuilder,
        warp_grid: Tuple[int, int],
        mi_count: int,
        ni_count: int,
        prefix: str = "",
    ):
        self.kb = kb
        self.wm_count, self.wn_count = warp_grid
        self.mi_count = mi_count
        self.ni_count = ni_count
        self.prefix = prefix

        t = Var("threadIdx.x")
        self.t = t
        self.warps = kb.block.tile([32])
        wid = self.warps.indices()[0]
        self.wm = wid % self.wm_count
        self.wn = wid // self.wm_count

        w = make_warp()
        grp_a = w.tile([8]).reshape((2, 2), order="col")
        self.gma, self.gna = grp_a.indices()
        self.local_a = grp_a.local_index()
        grp_b = w.tile([8]).reshape((2, 2))
        _, self.gnb = grp_b.indices()
        self.local_b = grp_b.local_index()
        lane = t % 32
        self.group = lane // 4
        self.tig = lane % 4

        self.a_frags = [
            kb.alloc(f"{prefix}a_frag_{mi}", (2, 4), FP16, RF)
            for mi in range(mi_count)
        ]
        self.b_frags = [
            kb.alloc(f"{prefix}b_frag_{ni}", (4,), FP16, RF)
            for ni in range(ni_count)
        ]

    # -- accumulators --------------------------------------------------------
    def make_accumulators(self, init: Optional[float] = 0.0
                          ) -> Dict[Tuple[int, int], Tensor]:
        accs = {}
        for mi in range(self.mi_count):
            for ni in range(self.ni_count):
                acc = self.kb.alloc(
                    f"{self.prefix}acc_{mi}_{ni}", (2, 2), FP32, RF
                )
                accs[(mi, ni)] = acc
                if init is not None:
                    self.kb.init(acc, init)
        return accs

    def init_accumulators(self, accs, value: float = 0.0) -> None:
        for acc in accs.values():
            self.kb.init(acc, value)

    # -- the fragment-load + mma loop ---------------------------------------------
    def mma_pass(
        self,
        smem_a: Tensor,
        smem_b: Tensor,
        accs: Dict[Tuple[int, int], Tensor],
        ki_count: int,
        use_ldmatrix: bool = True,
        a_row_tile_offset: int = 0,
        b_col_tile_offset: int = 0,
        k_tile_offset: int = 0,
        b_k_tile_offset: Optional[int] = None,
        b_layout: str = "kn",
    ) -> None:
        """Issue all mma for one staged (A, B) shared-memory slice pair.

        ``smem_a`` is ``[*, >=ki_count*16]`` fp16.  With the default
        ``b_layout="kn"`` the B operand is stored ``[k, n]`` and loaded
        with ``ldmatrix.trans``; ``b_layout="nk"`` reads a row-major
        ``[n, k]`` operand (e.g. the K matrix of attention's Q @ K^T)
        with plain ldmatrix.  Offsets select sub-ranges of larger
        staging buffers in units of 8-wide tiles.
        """
        kb = self.kb
        if b_k_tile_offset is None:
            b_k_tile_offset = k_tile_offset
        sm_a_tiles = smem_a.tile((8, 8))
        sm_b_tiles = smem_b.tile((8, 8))
        for kk in range(ki_count):
            kts = (k_tile_offset + kk) * 2
            kts_b = (b_k_tile_offset + kk) * 2
            for mi in range(self.mi_count):
                a_tile_row = (self.wm * self.mi_count + mi) * 2 \
                    + a_row_tile_offset
                if use_ldmatrix:
                    row = sm_a_tiles[
                        a_tile_row + self.gma, kts + self.gna
                    ].tile((1, None))[self.local_a, 0]
                    kb.move(row, self.a_frags[mi].tile((1, 2)),
                            threads=self.warps, label="ldmatrix A")
                else:
                    self._scalar_a_frag(sm_a_tiles, kts, a_tile_row, mi)
            for ni in range(self.ni_count):
                b_tile_col = self.wn * self.ni_count + ni + b_col_tile_offset
                if b_layout == "nk":
                    rowb = sm_b_tiles[
                        b_tile_col, kts_b + self.gnb
                    ].tile((1, None))[self.local_b, 0]
                    kb.move(rowb, self.b_frags[ni].tile((2,)),
                            threads=self.warps, label="ldmatrix B")
                elif use_ldmatrix:
                    rowb = sm_b_tiles[
                        kts_b + self.gnb, b_tile_col
                    ].tile((1, None))[self.local_b, 0]
                    kb.move(rowb, self.b_frags[ni].tile((2,)),
                            threads=self.warps, label="ldmatrix B trans")
                else:
                    self._scalar_b_frag(sm_b_tiles, kts_b, b_tile_col, ni)
            for mi in range(self.mi_count):
                for ni in range(self.ni_count):
                    kb.matmul(
                        self.a_frags[mi].tile((1, 2)),
                        self.b_frags[ni].tile((2,)),
                        accs[(mi, ni)].tile((1, 2)),
                        threads=self.warps,
                    )

    def _scalar_a_frag(self, sm_a_tiles, kts, a_tile_row, mi) -> None:
        frag_tiles = self.a_frags[mi].tile((1, 2))
        for q in range(4):
            tile = sm_a_tiles[a_tile_row + (q % 2), kts + q // 2]
            pair = tile.tile((1, 2))[self.group, self.tig]
            self.kb.move(pair, frag_tiles[q % 2, q // 2])

    def _scalar_b_frag(self, sm_b_tiles, kts, b_tile_col, ni) -> None:
        frag_tiles = self.b_frags[ni].tile((2,))
        for q in range(2):
            tile = sm_b_tiles[kts + q, b_tile_col]
            for j in range(2):
                self.kb.move(
                    tile[2 * self.tig + j, self.group], frag_tiles[q][j]
                )

    # -- accumulator views for epilogues/write-back ------------------------------------
    def acc_entries(
        self,
        accs: Dict[Tuple[int, int], Tensor],
        row_base,
        col_base,
    ) -> List[Tuple[Tensor, IntExpr, IntExpr]]:
        """(fp32 pair view, row, col) for every accumulator pair.

        Rows/cols are relative to ``row_base``/``col_base`` plus the
        warp-tile and fragment coordinates of the calling thread.
        """
        entries = []
        wtm = self.mi_count * 16
        wtn = self.ni_count * 8
        for (mi, ni), acc in accs.items():
            acc_tiles = acc.tile((1, 2))
            for q in (0, 1):
                row = row_base + self.wm * wtm + mi * 16 + self.group + 8 * q
                col = col_base + self.wn * wtn + ni * 8 + 2 * self.tig
                entries.append((acc_tiles[q, 0], row, col))
        return entries
