"""The kernel library: paper-figure kernels behind one constructor API.

Every family module exposes the same pair over the shared
config-dataclass convention of :mod:`repro.kernels.config`:

* ``build(cfg: <Family>Config) -> Kernel`` — canonical constructor,
* ``from_tuned(...) -> Kernel`` — autotuned constructor (families
  without a registered tuning space fall back to the default config).

``repro.kernels.build(cfg)`` dispatches on the config type, so callers
can hold configs as plain data.  These two are the *only* constructor
surface — the PR-1-era ``build_*`` entry points are gone.
"""

from __future__ import annotations

from ..specs.kernel import Kernel
from . import (
    epilogue, fmha, gemm, gemm_optimized, gemm_parametric, hopper,
    layernorm, lstm, mlp, moves, pointwise, softmax,
)
from .config import (
    BiasActConfig, CacheAppendConfig, DecodeFmhaConfig, FmhaConfig,
    GemmConfig, GemmEpilogueConfig, HopperFp8GemmConfig, KernelConfig,
    LayernormConfig, LdmatrixMoveConfig, LstmConfig, MergeHeadsConfig,
    MlpConfig, NaiveGemmConfig, ParametricGemmConfig,
    ResidualLayernormConfig, SoftmaxConfig, Sparse24GemmConfig,
    SplitHeadsConfig, TransposeConfig, config_summary,
)

#: Config type -> family module ``build`` function.
BUILDERS = {
    NaiveGemmConfig: gemm.build,
    GemmConfig: gemm_optimized.build,
    ParametricGemmConfig: gemm_parametric.build,
    GemmEpilogueConfig: epilogue.build,
    LayernormConfig: layernorm.build,
    MlpConfig: mlp.build,
    SoftmaxConfig: softmax.build,
    LstmConfig: lstm.build,
    FmhaConfig: fmha.build,
    LdmatrixMoveConfig: moves.build,
    BiasActConfig: pointwise.build_bias_act,
    TransposeConfig: pointwise.build_transpose,
    SplitHeadsConfig: pointwise.build_split_heads,
    MergeHeadsConfig: pointwise.build_merge_heads,
    CacheAppendConfig: pointwise.build_cache_append,
    DecodeFmhaConfig: fmha.build_decode_fmha,
    ResidualLayernormConfig: layernorm.build_residual_layernorm,
    HopperFp8GemmConfig: hopper.build_fp8,
    Sparse24GemmConfig: hopper.build_sparse24,
}

#: Family key -> config type (the inverse view, for CLI/artifact use).
CONFIG_TYPES = {cfg_type.family: cfg_type for cfg_type in BUILDERS}


def build(cfg: KernelConfig) -> Kernel:
    """Build the kernel a family config describes."""
    builder = BUILDERS.get(type(cfg))
    if builder is None:
        raise TypeError(
            f"no kernel builder registered for {type(cfg).__name__} "
            f"(known: {sorted(t.__name__ for t in BUILDERS)})"
        )
    return builder(cfg)


__all__ = [
    "build", "BUILDERS", "CONFIG_TYPES", "config_summary",
    "KernelConfig", "NaiveGemmConfig", "GemmConfig",
    "ParametricGemmConfig", "GemmEpilogueConfig", "LayernormConfig",
    "MlpConfig", "SoftmaxConfig", "LstmConfig", "FmhaConfig",
    "LdmatrixMoveConfig", "BiasActConfig", "TransposeConfig",
    "SplitHeadsConfig", "MergeHeadsConfig", "CacheAppendConfig",
    "DecodeFmhaConfig", "ResidualLayernormConfig", "HopperFp8GemmConfig",
    "Sparse24GemmConfig",
]
