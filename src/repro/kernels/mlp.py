"""Fused multi-layer perceptron kernel (paper Figure 11).

For hidden sizes with ``N = K <= 128`` all intermediate activations of an
MLP fit in shared memory, so Graphene fuses *every* layer
(GEMM + bias + ReLU) into one kernel: activations ping-pong between two
shared buffers and never round-trip through global memory, unlike the
cumulative per-layer cuBLASLt invocations it is compared against.
"""

from __future__ import annotations

from typing import Tuple

from ..frontend.builder import KernelBuilder
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP16
from ..tensor.memspace import SH
from .config import MlpConfig
from .gemm_optimized import _stage_to_shared
from .tc_common import WarpMmaEngine


def build(cfg: MlpConfig) -> Kernel:
    """Canonical constructor over the shared config convention."""
    return build_fused_mlp(cfg.m, cfg.hidden, cfg.layers,
                           block_rows=cfg.block_rows,
                           warp_grid=cfg.warp_grid,
                           activation=cfg.activation, name=cfg.name)


def build_fused_mlp(
    m: int,
    hidden: int,
    layers: int,
    block_rows: int = 64,
    warp_grid: Tuple[int, int] = (2, 2),
    activation: str = "relu",
    name: str = "graphene_fused_mlp",
) -> Kernel:
    """``x -> act(x @ W_l + b_l)`` repeated ``layers`` times, one kernel.

    Parameters: ``X [m, hidden]``, per layer ``W{l} [hidden, hidden]``
    and ``bias{l} [hidden]``, output ``Y [m, hidden]``.  Each block owns
    ``block_rows`` rows of activations, kept resident in shared memory
    across layers.
    """
    if m % block_rows:
        raise ValueError("block_rows must divide m")
    if hidden % 16:
        raise ValueError("hidden size must divide into 16-deep mma steps")
    wm_count, wn_count = warp_grid
    num_threads = wm_count * wn_count * 32
    if block_rows % (wm_count * 16) or hidden % (wn_count * 8):
        raise ValueError("warp grid must tile the block")
    mi_count = block_rows // (wm_count * 16)
    ni_count = hidden // (wn_count * 8)
    ki_count = hidden // 16

    kb = KernelBuilder(name, (m // block_rows,), (num_threads,))
    x = kb.param("X", (m, hidden), FP16)
    weights = [
        kb.param(f"W{l}", (hidden, hidden), FP16) for l in range(layers)
    ]
    biases = [kb.param(f"bias{l}", (hidden,), FP16) for l in range(layers)]
    y = kb.param("Y", (m, hidden), FP16)
    bid = kb.grid.indices()[0]

    smem_x = kb.alloc("smem_x", (block_rows, hidden), FP16, SH)
    smem_w = kb.alloc("smem_w", (hidden, hidden), FP16, SH)

    engine = WarpMmaEngine(kb, warp_grid, mi_count, ni_count)
    accs = engine.make_accumulators(init=None)
    t = engine.t

    kb.comment("stage the block's activation rows once")
    x_blocks = x.tile((block_rows, None))
    _stage_to_shared(kb, x_blocks[bid, 0], smem_x, num_threads, t)
    kb.sync()

    sm_x_pairs = smem_x.tile((1, 2))
    for layer in range(layers):
        kb.comment(f"layer {layer}: GEMM + bias + {activation} in registers")
        _stage_to_shared(kb, weights[layer], smem_w, num_threads, t)
        engine.init_accumulators(accs, 0.0)
        kb.sync()
        engine.mma_pass(smem_x, smem_w, accs, ki_count)
        entries = engine.acc_entries(accs, 0, 0)
        bias_vecs = biases[layer].tile((2,))
        for view, row, col in entries:
            kb.binary("add", view, bias_vecs[col // 2], view)
            kb.unary(activation, view, view)
        kb.sync()  # everyone has consumed smem_x before it is rewritten
        for view, row, col in entries:
            kb.move(view, sm_x_pairs[row, col // 2])
        kb.sync()

    kb.comment("write final activations to global memory")
    y_blocks = y.tile((block_rows, None))
    _stage_to_shared_out(kb, smem_x, y_blocks[bid, 0], num_threads, t)
    return kb.build()


def from_tuned(m: int, hidden: int, layers: int, arch="ampere",
               **tune_kwargs) -> Kernel:
    """Build the fused-MLP kernel the autotuner selects for this problem.

    Runs (or serves from the persistent tuning cache) a
    :func:`repro.tuner.tune` search over block-row counts, warp grids
    and fusion depths, then instantiates the winning configuration at
    full problem scale.  When the tuner picks a fusion depth shallower
    than ``layers``, the returned kernel covers ``depth`` layers and
    must be launched ``layers // depth`` times (see
    ``TuningResult.launches``).  Keyword arguments are forwarded to
    :func:`repro.tuner.tune`.
    """
    from ..tuner import tune

    result = tune("mlp", {"m": m, "hidden": hidden, "layers": layers},
                  arch=arch, **tune_kwargs)
    return result.build_kernel()


def _stage_to_shared_out(kb, sh, gl_tile, num_threads, t, vec: int = 8):
    """Vectorized cooperative copy of shared memory back to global."""
    rows, cols = sh.dim(0), sh.dim(1)
    vecs_per_row = cols // vec
    total = rows * vecs_per_row
    sh_vecs = sh.tile((1, vec))
    gl_vecs = gl_tile.tile((1, vec))
    full_rounds, remainder = divmod(total, num_threads)
    from ..ir.expr import Const

    for c in range(full_rounds):
        flat = Const(c * num_threads) + t
        row = flat // vecs_per_row
        colv = flat % vecs_per_row
        kb.move(sh_vecs[row, colv], gl_vecs[row, colv])
    if remainder:
        flat = Const(full_rounds * num_threads) + t
        with kb.when([(flat, Const(total))]):
            row = flat // vecs_per_row
            colv = flat % vecs_per_row
            kb.move(sh_vecs[row, colv], gl_vecs[row, colv])
