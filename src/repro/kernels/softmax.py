"""Row-wise softmax kernel (the unfused FMHA baseline's middle kernel).

A straightforward fused-row implementation: one thread per row, with the
numerically-stable max-subtraction formulation.  Used standalone for the
Figure 14 baseline and as the softmax stage inside the fused FMHA
kernel's decomposition.
"""

from __future__ import annotations

from ..frontend.builder import KernelBuilder
from ..ir.expr import Var
from ..specs.kernel import Kernel
from ..tensor.dtypes import FP16, FP32
from ..tensor.memspace import RF
from .config import SoftmaxConfig


def build(cfg: SoftmaxConfig) -> Kernel:
    """``Y[r] = softmax(scale * X[r])`` with one thread per row."""
    rows, cols = cfg.rows, cfg.cols
    threads_per_block, scale, name = (
        cfg.threads_per_block, cfg.scale, cfg.name
    )
    if rows % threads_per_block:
        raise ValueError("rows must divide by the block size")
    kb = KernelBuilder(name, (rows // threads_per_block,),
                       (threads_per_block,))
    x = kb.param("X", (rows, cols), FP16)
    y = kb.param("Y", (rows, cols), FP16)
    bid = kb.grid.indices()[0]
    t = Var("threadIdx.x")
    row = bid * threads_per_block + t

    vals = kb.alloc("sm_row", (cols,), FP32, RF)
    rmax = kb.alloc("sm_max", (1,), FP32, RF)
    rsum = kb.alloc("sm_sum", (1,), FP32, RF)
    scale_t = kb.alloc("sm_scale", (1,), FP32, RF)
    kb.init(scale_t, scale)

    x_rows = x.tile((1, None))
    y_rows = y.tile((1, None))
    kb.move(x_rows[row, 0], vals)
    kb.binary("mul", vals, scale_t, vals)
    kb.reduce("max", vals, rmax)
    kb.binary("sub", vals, rmax, vals)
    kb.unary("exp", vals, vals)
    kb.reduce("add", vals, rsum)
    kb.binary("div", vals, rsum, vals)
    kb.move(vals, y_rows[row, 0])
    return kb.build()


def from_tuned(rows: int, cols: int, arch: str = "ampere",
               **tune_kwargs) -> Kernel:
    """No softmax tuning space is registered yet; returns the default
    config (kept so every kernel module exposes the same ``build``/
    ``from_tuned`` pair)."""
    return build(SoftmaxConfig(rows, cols))
