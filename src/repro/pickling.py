"""Pickle support for the immutable IR object graph.

Graphene IR nodes (expressions, statements, layouts, tensors, specs,
kernels) are immutable ``__slots__`` classes whose ``__setattr__``
raises.  Python's default unpickler restores slot state through
``setattr``, so without help every IR class would refuse to unpickle.
:class:`PickleBySlots` gives the whole hierarchy a uniform state
protocol that bypasses the immutability guard with
``object.__setattr__`` — the same door the constructors use.

Interned singletons (dtypes, memory spaces, scalar ops, architectures)
instead reduce to a registry lookup by name, so identity-compared
values stay identical after a round trip and callables they carry
(numpy lambdas, atomic executors) never cross the pickle boundary.

This is what lets kernels, :class:`~repro.sim.plan.LaunchPlan`\\ s and
:class:`~repro.serve.CapturedGraph`\\ s travel to worker processes.
"""

from __future__ import annotations

import sys
from typing import Dict, Tuple


def slot_names(cls) -> Tuple[str, ...]:
    """Every ``__slots__`` entry of ``cls`` and its bases, base-first."""
    names = []
    for klass in reversed(cls.__mro__):
        for name in getattr(klass, "__slots__", ()):
            if name not in ("__weakref__", "__dict__"):
                names.append(name)
    return tuple(names)


class PickleBySlots:
    """Mixin: pickle an immutable ``__slots__`` class by slot state."""

    __slots__ = ()

    def __getstate__(self) -> Dict[str, object]:
        state = {}
        for name in slot_names(type(self)):
            value = getattr(self, name)
            if type(value) is str:
                # Canonicalize: non-identifier strings ('threadIdx.x')
                # are not auto-interned, so equal names at different
                # construction sites would otherwise pickle with
                # different sharing and destabilize the fingerprint.
                value = sys.intern(value)
            state[name] = value
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        for name, value in state.items():
            if type(value) is str:
                # Re-intern loaded strings: builders use interned
                # constants, so without this a round-tripped graph
                # loses string sharing and its re-pickle (and thus its
                # structural fingerprint) would drift.
                value = sys.intern(value)
            object.__setattr__(self, name, value)


__all__ = ["PickleBySlots", "slot_names"]
