"""Persistent tuning cache: tune once, serve every later run instantly.

The cache is one JSON file keyed by ``(kernel family, problem shape,
dtype, architecture)``.  Writes are atomic (temp file + ``os.replace``)
so a crashed or concurrent run can never leave a half-written file; a
corrupted or unreadable file degrades to an empty cache (the caller
re-tunes and the next put rewrites it).  Hit/miss counters persist in
the file itself, so cache effectiveness is visible across processes.

Persistence is *deferred*: lookups only mutate in-memory state and set
a dirty flag; the file is written on :meth:`TuningCache.put` and
:meth:`TuningCache.flush`/:meth:`TuningCache.close` (the cache is also
a context manager).  A read-heavy tuning session therefore performs at
most one write — earlier revisions rewrote the whole file on every
``get``, which made cache lookups the slowest part of a warm run.

Beyond exact lookups, the cache supports *cross-shape transfer*:
:meth:`TuningCache.nearest_entries` parses the canonical keys back into
structured ``(family, shape, dtype, arch)`` records and returns the
cached winners of the nearest neighbouring shapes, which the tuner uses
to seed beam search instead of cold-searching every new problem.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Environment override for the default on-disk location.
CACHE_ENV_VAR = "GRAPHENE_TUNER_CACHE"
DEFAULT_CACHE_FILENAME = ".graphene_tuner_cache.json"

_SCHEMA_VERSION = 1


def default_cache_path() -> str:
    return os.environ.get(CACHE_ENV_VAR, DEFAULT_CACHE_FILENAME)


@dataclass(frozen=True)
class ParsedKey:
    """One cache key parsed back into its structured components."""

    family: str
    shape: Dict[str, int]
    dtype: str
    arch: str
    layout: Optional[str] = None

    @property
    def shape_axes(self) -> Tuple[str, ...]:
        return tuple(sorted(self.shape))


def parse_key(key: str) -> Optional[ParsedKey]:
    """Parse a :meth:`TuningCache.make_key` string; None if malformed."""
    parts = key.split("|")
    if len(parts) < 4:
        return None
    family, dims, dtype, arch = parts[0], parts[1], parts[2], parts[3]
    if not dtype.startswith("dtype=") or not arch.startswith("arch="):
        return None
    layout = None
    if len(parts) >= 5:
        if not parts[4].startswith("layout="):
            return None
        layout = parts[4][len("layout="):]
    shape: Dict[str, int] = {}
    if dims:
        for item in dims.split(","):
            name, _, value = item.partition("=")
            try:
                shape[name] = int(value)
            except ValueError:
                return None
    return ParsedKey(family=family, shape=shape,
                     dtype=dtype[len("dtype="):], arch=arch[len("arch="):],
                     layout=layout)


def key_distance(a: ParsedKey, b: ParsedKey) -> Optional[float]:
    """Shape distance between two comparable tuning problems.

    Euclidean distance in log2 space over the shared shape axes —
    doubling any one dimension costs 1.0 regardless of its absolute
    magnitude, so ``(m=512, k=64)`` is as near to ``(m=1024, k=64)`` as
    ``(m=4096, k=64)`` is to ``(m=8192, k=64)``.  Symmetric by
    construction.  Returns ``None`` for problems that are not
    transferable at all: different family/dtype/arch/layout or
    different shape axes.
    """
    if (a.family != b.family or a.dtype != b.dtype or a.arch != b.arch
            or a.layout != b.layout or a.shape_axes != b.shape_axes):
        return None
    total = 0.0
    for axis in a.shape_axes:
        va, vb = a.shape[axis], b.shape[axis]
        if va <= 0 or vb <= 0:
            return None
        total += (math.log2(va) - math.log2(vb)) ** 2
    return math.sqrt(total)


class TuningCache:
    """JSON-backed map from tuning keys to winning configurations.

    ``path=None`` keeps the cache purely in memory (used by the figure
    benches, which must not touch the filesystem).  Usable as a context
    manager; :meth:`close` flushes deferred stats updates.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = os.fspath(path) if path is not None else None
        self.recovered_from_corruption = False
        self._data = self._load()
        self._dirty = False

    # -- keys ---------------------------------------------------------------
    @staticmethod
    def make_key(family: str, shape: Dict[str, int], dtype: str,
                 arch: str, layout=None, swizzle=None) -> str:
        """The cache key for one tuning problem.

        ``layout`` (a :class:`~repro.layout.layout.Layout`, optionally
        with a ``swizzle``) describes a problem whose operand layout is
        part of its identity — e.g. tuning against a pre-swizzled or
        custom-strided input.  It is keyed by *canonical form*
        (:func:`repro.layout.linear.canonical_layout_tag`), so two
        callers spelling the same physical layout differently (nested
        vs flat modes, coalesced runs, equivalent swizzles) share one
        entry instead of re-tuning.
        """
        dims = ",".join(f"{k}={shape[k]}" for k in sorted(shape))
        key = f"{family}|{dims}|dtype={dtype}|arch={arch}"
        if layout is not None:
            from ..layout.linear import canonical_layout_tag
            from ..layout.swizzle import IDENTITY_SWIZZLE
            tag = canonical_layout_tag(layout, swizzle or IDENTITY_SWIZZLE)
            key += f"|layout={tag}"
        return key

    # -- persistence --------------------------------------------------------
    def _empty(self) -> Dict:
        return {
            "version": _SCHEMA_VERSION,
            "stats": {"hits": 0, "misses": 0},
            "entries": {},
        }

    def _load(self) -> Dict:
        if self.path is None or not os.path.exists(self.path):
            return self._empty()
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if (
                not isinstance(data, dict)
                or data.get("version") != _SCHEMA_VERSION
                or not isinstance(data.get("entries"), dict)
                or not isinstance(data.get("stats"), dict)
            ):
                raise ValueError("unrecognised cache schema")
            data["stats"].setdefault("hits", 0)
            data["stats"].setdefault("misses", 0)
            return data
        except (OSError, ValueError) as _:
            # json.JSONDecodeError is a ValueError: fall back to an
            # empty cache, re-tune, and overwrite the broken file.
            self.recovered_from_corruption = True
            return self._empty()

    def _write(self) -> None:
        if self.path is None:
            self._dirty = False
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            prefix=".graphene_tuner_", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self._data, fh, indent=1, sort_keys=True)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._dirty = False

    def flush(self) -> None:
        """Persist deferred state (hit/miss stats); no-op when clean."""
        if self._dirty:
            self._write()

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "TuningCache":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def dirty(self) -> bool:
        """True when in-memory state is ahead of the file."""
        return self._dirty

    # -- access -------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict]:
        """Look up a tuning entry, updating in-memory hit/miss stats.

        Lookups never touch the file — the updated stats persist with
        the next :meth:`put` or :meth:`flush`.
        """
        entry = self._data["entries"].get(key)
        if entry is None:
            self._data["stats"]["misses"] += 1
        else:
            self._data["stats"]["hits"] += 1
        self._dirty = True
        return json.loads(json.dumps(entry)) if entry is not None else None

    def put(self, key: str, entry: Dict) -> None:
        self._data["entries"][key] = entry
        self._write()

    def clear(self) -> None:
        self._data = self._empty()
        self._write()

    # -- cross-shape transfer ------------------------------------------------
    def nearest_entries(self, key: str, k: int = 1) -> \
            List[Tuple[str, Dict, float]]:
        """The ``k`` cached problems nearest to ``key`` by shape.

        Returns ``(key, entry, distance)`` tuples sorted by ascending
        :func:`key_distance` (key string as the deterministic tiebreak),
        considering only *transferable* entries: same family, dtype,
        architecture, layout tag and shape axes, at a different shape
        (an exact-key entry is an ordinary :meth:`get` hit, not a
        transfer).  Entries whose keys fail to parse are skipped.
        """
        target = parse_key(key)
        if target is None or k <= 0:
            return []
        scored: List[Tuple[float, str, Dict]] = []
        for other_key, entry in self._data["entries"].items():
            if other_key == key:
                continue
            parsed = parse_key(other_key)
            if parsed is None:
                continue
            distance = key_distance(target, parsed)
            if distance is None:
                continue
            scored.append((distance, other_key, entry))
        scored.sort(key=lambda item: (item[0], item[1]))
        return [(other_key, json.loads(json.dumps(entry)), distance)
                for distance, other_key, entry in scored[:k]]

    # -- statistics ---------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._data["stats"]["hits"]

    @property
    def misses(self) -> int:
        return self._data["stats"]["misses"]

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._data["entries"]),
        }

    def __len__(self) -> int:
        return len(self._data["entries"])

    def __contains__(self, key: str) -> bool:
        return key in self._data["entries"]
