"""Persistent tuning cache: tune once, serve every later run instantly.

The cache is one JSON file keyed by ``(kernel family, problem shape,
dtype, architecture)``.  Writes are atomic (temp file + ``os.replace``)
so a crashed or concurrent run can never leave a half-written file; a
corrupted or unreadable file degrades to an empty cache (the caller
re-tunes and the next put rewrites it).  Hit/miss counters persist in
the file itself, so cache effectiveness is visible across processes.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

#: Environment override for the default on-disk location.
CACHE_ENV_VAR = "GRAPHENE_TUNER_CACHE"
DEFAULT_CACHE_FILENAME = ".graphene_tuner_cache.json"

_SCHEMA_VERSION = 1


def default_cache_path() -> str:
    return os.environ.get(CACHE_ENV_VAR, DEFAULT_CACHE_FILENAME)


class TuningCache:
    """JSON-backed map from tuning keys to winning configurations.

    ``path=None`` keeps the cache purely in memory (used by the figure
    benches, which must not touch the filesystem).
    """

    def __init__(self, path: Optional[str] = None):
        self.path = os.fspath(path) if path is not None else None
        self.recovered_from_corruption = False
        self._data = self._load()

    # -- keys ---------------------------------------------------------------
    @staticmethod
    def make_key(family: str, shape: Dict[str, int], dtype: str,
                 arch: str, layout=None, swizzle=None) -> str:
        """The cache key for one tuning problem.

        ``layout`` (a :class:`~repro.layout.layout.Layout`, optionally
        with a ``swizzle``) describes a problem whose operand layout is
        part of its identity — e.g. tuning against a pre-swizzled or
        custom-strided input.  It is keyed by *canonical form*
        (:func:`repro.layout.linear.canonical_layout_tag`), so two
        callers spelling the same physical layout differently (nested
        vs flat modes, coalesced runs, equivalent swizzles) share one
        entry instead of re-tuning.
        """
        dims = ",".join(f"{k}={shape[k]}" for k in sorted(shape))
        key = f"{family}|{dims}|dtype={dtype}|arch={arch}"
        if layout is not None:
            from ..layout.linear import canonical_layout_tag
            from ..layout.swizzle import IDENTITY_SWIZZLE
            tag = canonical_layout_tag(layout, swizzle or IDENTITY_SWIZZLE)
            key += f"|layout={tag}"
        return key

    # -- persistence --------------------------------------------------------
    def _empty(self) -> Dict:
        return {
            "version": _SCHEMA_VERSION,
            "stats": {"hits": 0, "misses": 0},
            "entries": {},
        }

    def _load(self) -> Dict:
        if self.path is None or not os.path.exists(self.path):
            return self._empty()
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            if (
                not isinstance(data, dict)
                or data.get("version") != _SCHEMA_VERSION
                or not isinstance(data.get("entries"), dict)
                or not isinstance(data.get("stats"), dict)
            ):
                raise ValueError("unrecognised cache schema")
            data["stats"].setdefault("hits", 0)
            data["stats"].setdefault("misses", 0)
            return data
        except (OSError, ValueError) as _:
            # json.JSONDecodeError is a ValueError: fall back to an
            # empty cache, re-tune, and overwrite the broken file.
            self.recovered_from_corruption = True
            return self._empty()

    def _write(self) -> None:
        if self.path is None:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            prefix=".graphene_tuner_", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self._data, fh, indent=1, sort_keys=True)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # -- access -------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict]:
        """Look up a tuning entry, updating persistent hit/miss stats."""
        entry = self._data["entries"].get(key)
        if entry is None:
            self._data["stats"]["misses"] += 1
        else:
            self._data["stats"]["hits"] += 1
        self._write()
        return json.loads(json.dumps(entry)) if entry is not None else None

    def put(self, key: str, entry: Dict) -> None:
        self._data["entries"][key] = entry
        self._write()

    def clear(self) -> None:
        self._data = self._empty()
        self._write()

    # -- statistics ---------------------------------------------------------
    @property
    def hits(self) -> int:
        return self._data["stats"]["hits"]

    @property
    def misses(self) -> int:
        return self._data["stats"]["misses"]

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._data["entries"]),
        }

    def __len__(self) -> int:
        return len(self._data["entries"])

    def __contains__(self, key: str) -> bool:
        return key in self._data["entries"]
