"""Search drivers that rank decomposition-space candidates.

The oracle is the analytical performance model: each candidate's kernel
IR is built and costed with
:func:`repro.perfmodel.estimate_kernel` (bank-conflict-aware, so
swizzled and unswizzled stagings rank differently).  Per-candidate
FLOP/byte/bank-conflict attribution is retained on every
:class:`RankedCandidate` for leaderboard reporting.

Two drivers are provided:

* :func:`exhaustive_search` costs every legal candidate;
* :func:`beam_search` first costs one representative per coarse group
  (for GEMM: per block tile), keeps the best ``beam`` groups, and only
  expands those — pruning the warp/swizzle/stage cross-product of
  hopeless tilings.  ``seeds`` transfers winners cached at neighbouring
  shapes into the surviving set (see the function docstring).

Both drivers funnel every kernel build + costing through a *batch
evaluator* — a callable mapping a candidate batch to results in input
order.  The default :func:`serial_evaluator` runs in-process; the
fleet driver (:mod:`repro.tuner.fleet`) substitutes a process-pool
evaluator, and because the drivers' control flow never depends on who
evaluated the batch, both produce bit-identical leaderboards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch.gpu import Architecture
from ..perfmodel import CostBreakdown, estimate_kernel
from .space import Candidate, ConfigSpace

Oracle = Callable[..., CostBreakdown]


def perfmodel_oracle(kernel, arch: Architecture) -> CostBreakdown:
    """The default ranking oracle: the bank-conflict-aware roofline."""
    return estimate_kernel(kernel, arch, include_bank_conflicts=True)


@dataclass
class RankedCandidate:
    """One costed point of the space, with full attribution."""

    candidate: Candidate
    cost: CostBreakdown
    #: End-to-end modelled seconds: ``launches`` sequential launches of
    #: the candidate's kernel (fusion-depth candidates need several).
    score_seconds: float
    launches: int = 1

    @property
    def label(self) -> str:
        return self.candidate.label


@dataclass
class SearchResult:
    """Ranked leaderboard plus sweep accounting."""

    ranked: List[RankedCandidate]
    total_candidates: int
    evaluated: int
    pruned: int
    skipped: List[str] = field(default_factory=list)
    #: Labels of transfer seeds whose coarse group exists in this space
    #: (populated by seeded :func:`beam_search` only).
    seeded_from: List[str] = field(default_factory=list)

    @property
    def best(self) -> RankedCandidate:
        if not self.ranked:
            raise ValueError("search produced no rankable candidate")
        return self.ranked[0]


#: One evaluation outcome: the ranked candidate, or the skip message
#: explaining why the build/costing rejected it.
EvalOutcome = Tuple[Optional[RankedCandidate], Optional[str]]
#: Batch evaluator: maps candidates to outcomes *in input order*.
Evaluator = Callable[
    [ConfigSpace, Sequence[Candidate], Dict[str, int], Architecture, Oracle],
    List[EvalOutcome],
]


def evaluate_candidate(
    space: ConfigSpace,
    candidate: Candidate,
    shape: Dict[str, int],
    arch: Architecture,
    oracle: Oracle,
) -> EvalOutcome:
    """Build + cost one candidate; skip (with the reason) on rejection."""
    try:
        kernel = space.build(candidate, shape)
        cost = oracle(kernel, arch)
    except ValueError as exc:
        # A pruning predicate missed a structural constraint; record and
        # keep searching rather than aborting the sweep.
        return None, f"{candidate.label}: {exc}"
    launches = space.launches(candidate, shape)
    return RankedCandidate(
        candidate=candidate,
        cost=cost,
        score_seconds=launches * cost.time_seconds,
        launches=launches,
    ), None


def serial_evaluator(
    space: ConfigSpace,
    candidates: Sequence[Candidate],
    shape: Dict[str, int],
    arch: Architecture,
    oracle: Oracle,
) -> List[EvalOutcome]:
    """The in-process batch evaluator (the serial path)."""
    return [evaluate_candidate(space, c, shape, arch, oracle)
            for c in candidates]


def _collect(outcomes: List[EvalOutcome], ranked: List[RankedCandidate],
             skipped: List[str]) -> List[Optional[RankedCandidate]]:
    """Split outcomes into the ranked/skipped accumulators, in order."""
    results: List[Optional[RankedCandidate]] = []
    for rc, skip in outcomes:
        if rc is not None:
            ranked.append(rc)
        elif skip is not None:
            skipped.append(skip)
        results.append(rc)
    return results


def _sorted(ranked: List[RankedCandidate]) -> List[RankedCandidate]:
    # Deterministic: modelled time first, label as the stable tiebreak.
    return sorted(ranked, key=lambda rc: (rc.score_seconds, rc.label))


def exhaustive_search(
    space: ConfigSpace,
    shape: Dict[str, int],
    arch: Architecture,
    oracle: Optional[Oracle] = None,
    evaluator: Optional[Evaluator] = None,
) -> SearchResult:
    """Cost every legal candidate of the space."""
    oracle = oracle or perfmodel_oracle
    evaluator = evaluator or serial_evaluator
    skipped: List[str] = []
    ranked: List[RankedCandidate] = []
    candidates = list(space.candidates(shape, arch))
    _collect(evaluator(space, candidates, shape, arch, oracle),
             ranked, skipped)
    return SearchResult(
        ranked=_sorted(ranked), total_candidates=len(candidates),
        evaluated=len(candidates) - len(skipped), pruned=0, skipped=skipped,
    )


def beam_search(
    space: ConfigSpace,
    shape: Dict[str, int],
    arch: Architecture,
    beam: int = 6,
    oracle: Optional[Oracle] = None,
    evaluator: Optional[Evaluator] = None,
    seeds: Optional[Sequence[Candidate]] = None,
) -> SearchResult:
    """Two-stage pruned search over the space's coarse groups.

    Stage 1 costs the first member of every coarse group (one point per
    block tile for GEMM).  Stage 2 fully expands only the ``beam``
    groups whose representative ranked best.  With ``beam`` at least
    the group count this degenerates to :func:`exhaustive_search`.

    ``seeds`` (winning candidates transferred from neighbouring cached
    shapes) force their coarse groups into the surviving set *in
    addition to* the ``beam`` stage-1 survivors, so at equal ``beam`` a
    seeded search explores a superset of the cold search's candidates
    and can never return a worse winner.  With ``beam=0`` the stage-1
    representative scan is skipped entirely — only the seed groups are
    expanded (the aggressive transfer mode; the correctness gate and
    the caller's cold-search fallback backstop a bad seed).  Seeds
    whose group does not exist in this space (an illegal tiling at this
    shape) are dropped; ``beam=0`` with no surviving seed raises
    :class:`ValueError`.
    """
    oracle = oracle or perfmodel_oracle
    evaluator = evaluator or serial_evaluator
    skipped: List[str] = []
    groups: Dict[object, List[Candidate]] = {}
    order: List[object] = []
    total = 0
    for candidate in space.candidates(shape, arch):
        total += 1
        key = space.coarse_key(candidate)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(candidate)

    seed_keys: List[object] = []
    seeded_from: List[str] = []
    for seed in seeds or ():
        try:
            key = space.coarse_key(seed)
        except (KeyError, TypeError, ValueError):
            continue  # stale params from an older space revision
        if key in groups and key not in seed_keys:
            seed_keys.append(key)
            seeded_from.append(seed.label)
    if beam <= 0 and not seed_keys:
        raise ValueError(
            "beam=0 requires at least one transfer seed whose coarse "
            "group is legal at this shape"
        )

    rep_by_key: Dict[object, RankedCandidate] = {}
    stage1_ran = beam > 0
    if stage1_ran:
        # Stage 1: one representative per coarse group.
        outcomes = evaluator(
            space, [groups[key][0] for key in order], shape, arch, oracle)
        stage1 = _collect(outcomes, [], skipped)
        for key, rc in zip(order, stage1):
            if rc is not None:
                rep_by_key[key] = rc
        by_score = sorted(
            rep_by_key.items(),
            key=lambda item: (item[1].score_seconds, item[1].label),
        )
        surviving = {key for key, _ in by_score[:beam]}
        surviving.update(seed_keys)
    else:
        # Transfer-only mode: the seeds' groups *are* the beam; nothing
        # else is costed, not even stage-1 representatives.
        surviving = set(seed_keys)

    ranked: List[RankedCandidate] = []
    pruned = 0
    expansion: List[Candidate] = []
    for key in order:
        members = groups[key]
        if key not in surviving:
            pruned += len(members)
            continue
        if key in rep_by_key:
            ranked.append(rep_by_key[key])
        # With stage 1 run, the representative's verdict is already in
        # (ranked or skipped) — never re-evaluate it.
        expansion.extend(members[1:] if stage1_ran else members)
    _collect(evaluator(space, expansion, shape, arch, oracle),
             ranked, skipped)
    # Like the serial accounting has always worked: evaluations that
    # produced a ranking count, candidates a predicate skipped do not.
    evaluated = len(rep_by_key) + len(expansion)
    # Representatives of pruned groups stay on the leaderboard so the
    # report shows *why* their tiling lost.
    for key in order:
        if key not in surviving and key in rep_by_key:
            ranked.append(rep_by_key[key])
            pruned -= 1
    return SearchResult(
        ranked=_sorted(ranked), total_candidates=total,
        evaluated=evaluated, pruned=pruned, skipped=skipped,
        seeded_from=seeded_from,
    )
