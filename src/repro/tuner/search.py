"""Search drivers that rank decomposition-space candidates.

The oracle is the analytical performance model: each candidate's kernel
IR is built and costed with
:func:`repro.perfmodel.estimate_kernel` (bank-conflict-aware, so
swizzled and unswizzled stagings rank differently).  Per-candidate
FLOP/byte/bank-conflict attribution is retained on every
:class:`RankedCandidate` for leaderboard reporting.

Two drivers are provided:

* :func:`exhaustive_search` costs every legal candidate;
* :func:`beam_search` first costs one representative per coarse group
  (for GEMM: per block tile), keeps the best ``beam`` groups, and only
  expands those — pruning the warp/swizzle/stage cross-product of
  hopeless tilings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..arch.gpu import Architecture
from ..perfmodel import CostBreakdown, estimate_kernel
from .space import Candidate, ConfigSpace

Oracle = Callable[..., CostBreakdown]


def perfmodel_oracle(kernel, arch: Architecture) -> CostBreakdown:
    """The default ranking oracle: the bank-conflict-aware roofline."""
    return estimate_kernel(kernel, arch, include_bank_conflicts=True)


@dataclass
class RankedCandidate:
    """One costed point of the space, with full attribution."""

    candidate: Candidate
    cost: CostBreakdown
    #: End-to-end modelled seconds: ``launches`` sequential launches of
    #: the candidate's kernel (fusion-depth candidates need several).
    score_seconds: float
    launches: int = 1

    @property
    def label(self) -> str:
        return self.candidate.label


@dataclass
class SearchResult:
    """Ranked leaderboard plus sweep accounting."""

    ranked: List[RankedCandidate]
    total_candidates: int
    evaluated: int
    pruned: int
    skipped: List[str] = field(default_factory=list)

    @property
    def best(self) -> RankedCandidate:
        if not self.ranked:
            raise ValueError("search produced no rankable candidate")
        return self.ranked[0]


def _evaluate(
    space: ConfigSpace,
    candidate: Candidate,
    shape: Dict[str, int],
    arch: Architecture,
    oracle: Oracle,
    skipped: List[str],
) -> Optional[RankedCandidate]:
    try:
        kernel = space.build(candidate, shape)
        cost = oracle(kernel, arch)
    except ValueError as exc:
        # A pruning predicate missed a structural constraint; record and
        # keep searching rather than aborting the sweep.
        skipped.append(f"{candidate.label}: {exc}")
        return None
    launches = space.launches(candidate, shape)
    return RankedCandidate(
        candidate=candidate,
        cost=cost,
        score_seconds=launches * cost.time_seconds,
        launches=launches,
    )


def _sorted(ranked: List[RankedCandidate]) -> List[RankedCandidate]:
    # Deterministic: modelled time first, label as the stable tiebreak.
    return sorted(ranked, key=lambda rc: (rc.score_seconds, rc.label))


def exhaustive_search(
    space: ConfigSpace,
    shape: Dict[str, int],
    arch: Architecture,
    oracle: Optional[Oracle] = None,
) -> SearchResult:
    """Cost every legal candidate of the space."""
    oracle = oracle or perfmodel_oracle
    skipped: List[str] = []
    ranked: List[RankedCandidate] = []
    total = 0
    for candidate in space.candidates(shape, arch):
        total += 1
        rc = _evaluate(space, candidate, shape, arch, oracle, skipped)
        if rc is not None:
            ranked.append(rc)
    return SearchResult(
        ranked=_sorted(ranked), total_candidates=total,
        evaluated=total - len(skipped), pruned=0, skipped=skipped,
    )


def beam_search(
    space: ConfigSpace,
    shape: Dict[str, int],
    arch: Architecture,
    beam: int = 6,
    oracle: Optional[Oracle] = None,
) -> SearchResult:
    """Two-stage pruned search over the space's coarse groups.

    Stage 1 costs the first member of every coarse group (one point per
    block tile for GEMM).  Stage 2 fully expands only the ``beam``
    groups whose representative ranked best.  With ``beam`` at least
    the group count this degenerates to :func:`exhaustive_search`.
    """
    oracle = oracle or perfmodel_oracle
    skipped: List[str] = []
    groups: Dict[object, List[Candidate]] = {}
    order: List[object] = []
    total = 0
    for candidate in space.candidates(shape, arch):
        total += 1
        key = space.coarse_key(candidate)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(candidate)

    rep_by_key: Dict[object, RankedCandidate] = {}
    for key in order:
        rc = _evaluate(space, groups[key][0], shape, arch, oracle, skipped)
        if rc is not None:
            rep_by_key[key] = rc

    by_score = sorted(
        rep_by_key.items(),
        key=lambda item: (item[1].score_seconds, item[1].label),
    )
    surviving = {key for key, _ in by_score[:beam]}
    ranked: List[RankedCandidate] = []
    evaluated = 0
    pruned = 0
    for key in order:
        members = groups[key]
        if key not in surviving:
            pruned += len(members)
            continue
        ranked.append(rep_by_key[key])
        evaluated += 1
        for candidate in members[1:]:
            rc = _evaluate(space, candidate, shape, arch, oracle, skipped)
            evaluated += 1
            if rc is not None:
                ranked.append(rc)
    # Representatives of pruned groups stay on the leaderboard so the
    # report shows *why* their tiling lost.
    for key in order:
        if key not in surviving and key in rep_by_key:
            ranked.append(rep_by_key[key])
            evaluated += 1
            pruned -= 1
    return SearchResult(
        ranked=_sorted(ranked), total_candidates=total,
        evaluated=evaluated, pruned=pruned, skipped=skipped,
    )
