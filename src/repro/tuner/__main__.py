"""Command-line autotuner with a ranked leaderboard.

Usage::

    python -m repro.tuner gemm --arch sm86 --m 5376 --n 5376 --k 2048
    python -m repro.tuner layernorm --rows 12288 --hidden 1024
    python -m repro.tuner mlp --m 4096 --hidden 128 --layers 20
    python -m repro.tuner fmha --batch-heads 16 --seq 512 --head-dim 64
    python -m repro.tuner tune-all --workers 4 --transfer

``tune-all`` sweeps every registered family over the benchmark roster
three ways (serial / parallel fleet / parallel+transfer) and writes
``BENCH_tuner.json``; see :mod:`repro.eval.tuner_bench`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import SPACES, TuningError, get_space, resolve_arch, tune
from .verify import GateError


def _parse_tile(text: str):
    try:
        parts = tuple(int(p) for p in text.lower().split("x"))
    except ValueError:
        parts = ()
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"expected MxN or MxNxK tile, got {text!r}"
        )
    return parts


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuner",
        description="Search a kernel family's Graphene decomposition "
        "space; rank with the performance model; verify the winners in "
        "the functional simulator.  'tune-all' benchmarks the whole "
        "roster (serial vs fleet vs fleet+transfer).",
    )
    parser.add_argument("family", choices=sorted(SPACES) + ["tune-all"])
    parser.add_argument("--arch", default="sm86",
                        help="ampere/sm86 or volta/sm70 (default sm86)")
    parser.add_argument("--m", type=int, help="GEMM/MLP/LSTM rows")
    parser.add_argument("--n", type=int, help="GEMM columns")
    parser.add_argument("--k", type=int, help="GEMM reduction depth")
    parser.add_argument("--rows", type=int, help="layernorm/softmax rows")
    parser.add_argument("--cols", type=int, help="softmax columns")
    parser.add_argument("--hidden", type=int, help="layernorm/MLP width")
    parser.add_argument("--layers", type=int, help="MLP layer count")
    parser.add_argument("--batch-heads", type=int,
                        help="FMHA batch x heads product")
    parser.add_argument("--seq", type=int, help="FMHA sequence length")
    parser.add_argument("--head-dim", type=int, help="FMHA head dimension")
    parser.add_argument("--search", choices=("beam", "exhaustive"),
                        default="beam")
    parser.add_argument("--beam", type=int, default=6,
                        help="surviving coarse groups in beam search")
    parser.add_argument("--top", type=int, default=3,
                        help="candidates the correctness gate executes")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-fleet width for evaluation and the "
                        "gate (1 = serial)")
    parser.add_argument("--transfer", action="store_true",
                        help="seed the search from the nearest cached "
                        "shapes (cross-shape transfer)")
    parser.add_argument("--rows-shown", type=int, default=10,
                        help="leaderboard rows to print")
    parser.add_argument("--cache", default=None,
                        help="tuning-cache path (default "
                        ".graphene_tuner_cache.json or $GRAPHENE_TUNER_CACHE)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the tuning cache")
    parser.add_argument("--force", action="store_true",
                        help="re-tune even when the cache has this key")
    parser.add_argument("--seed", type=int, default=0,
                        help="verification-problem RNG seed")
    parser.add_argument("--block-tiles", type=str, default=None,
                        help="restrict GEMM block tiles, e.g. "
                        "'128x128x32,64x64x32'")
    parser.add_argument("--out-dir", default="bench_artifacts",
                        help="tune-all: artifact directory")
    parser.add_argument("--quick", action="store_true",
                        help="tune-all: the reduced smoke roster")
    return parser


#: The paper's Figure 9 problem sizes (and roster-scale sizes for the
#: families the paper benchmarks at one shape), used when shape flags
#: are omitted.
_DEFAULT_SHAPES = {
    ("gemm", "ampere"): {"m": 5376, "n": 5376, "k": 2048},
    ("gemm", "volta"): {"m": 5120, "n": 5120, "k": 2048},
    ("gemm", "hopper"): {"m": 5376, "n": 5376, "k": 2048},
    ("gemm_epilogue", None): {"m": 2048, "n": 2048, "k": 512},
    ("gemm_naive", None): {"m": 512, "n": 512, "k": 128},
    ("gemm_parametric", None): {"m": 1000, "n": 256, "k": 128},
    ("layernorm", None): {"rows": 12288, "hidden": 1024},
    ("mlp", None): {"m": 4096, "hidden": 128, "layers": 12},
    ("lstm", None): {"m": 1024, "n": 1024, "k": 256},
    ("softmax", None): {"rows": 4096, "cols": 1024},
    ("fmha", None): {"batch_heads": 16, "seq": 512, "head_dim": 64},
    ("moves", None): {},
    ("gemm_fp8", None): {"m": 4096, "n": 4096, "k": 2048},
    ("gemm_sparse24", None): {"m": 4096, "n": 4096, "k": 2048},
}


def _shape_from_args(args, arch) -> dict:
    defaults = (
        _DEFAULT_SHAPES.get((args.family, arch.key))
        or _DEFAULT_SHAPES.get((args.family, None), {})
    )
    provided = {
        "m": args.m, "n": args.n, "k": args.k,
        "rows": args.rows, "cols": args.cols,
        "hidden": args.hidden, "layers": args.layers,
        "batch_heads": args.batch_heads, "seq": args.seq,
        "head_dim": args.head_dim,
    }
    shape = dict(defaults)
    shape.update({k: v for k, v in provided.items() if v is not None})
    return shape


def _format_leaderboard(result, rows_shown: int) -> str:
    gate_status = {
        tuple(sorted(r.candidate.params.items())): r.status
        for r in result.gate_results
    }
    header = (
        f"{'rank':>4}  {'config':<56} {'time_us':>10} {'tflops':>8} "
        f"{'dram_MB':>9} {'conflicts':>9} {'launches':>8}  gate"
    )
    lines = [header, "-" * len(header)]
    for rank, rc in enumerate(result.ranked[:rows_shown], start=1):
        status = gate_status.get(
            tuple(sorted(rc.candidate.params.items())), ""
        )
        lines.append(
            f"{rank:>4}  {rc.label:<56} "
            f"{rc.score_seconds * 1e6:>10.1f} "
            f"{rc.cost.tflops():>8.1f} "
            f"{rc.cost.dram_bytes / 1e6:>9.1f} "
            f"{rc.cost.smem_bank_conflicts:>8.1f}x "
            f"{rc.launches:>8d}  {status}"
        )
    return "\n".join(lines)


def _main_tune_all(args) -> int:
    from ..eval.tuner_bench import run_tuner_bench

    workers = args.workers if args.workers > 1 else None
    path = run_tuner_bench(
        arch=args.arch, workers=workers, outdir=args.out_dir,
        quick=args.quick, seed=args.seed, transfer=True,
    )
    import json

    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    modes = payload["modes"]
    print(f"tune-all over {payload['families']} families "
          f"({payload['tuned_shapes']} shapes) on {payload['arch']}, "
          f"{payload['workers']} workers")
    print(f"  serial:            {modes['serial']['wall_seconds']:8.2f}s")
    print(f"  parallel:          {modes['parallel']['wall_seconds']:8.2f}s "
          f"(identical to serial: "
          f"{modes['parallel']['identical_to_serial']})")
    print(f"  parallel+transfer: "
          f"{modes['parallel_transfer']['wall_seconds']:8.2f}s")
    print(f"speedup vs serial: "
          f"{payload['speedup_parallel_transfer_vs_serial']}x "
          f"(target {payload['target_speedup']}x, "
          f"meets: {payload['meets_target']})")
    print(f"wrote {path}")
    return 0 if payload["meets_target"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.family == "tune-all":
            return _main_tune_all(args)
        arch = resolve_arch(args.arch)
        space_kwargs = {}
        if args.family == "gemm" and args.block_tiles:
            space_kwargs["block_tiles"] = [
                _parse_tile(t) for t in args.block_tiles.split(",")
            ]
        space = get_space(args.family, **space_kwargs)
        shape = _shape_from_args(args, arch)

        cache = False if args.no_cache else args.cache
        result = tune(
            args.family, shape, arch, space=space, cache=cache,
            search=args.search, beam=args.beam, top_k=args.top,
            seed=args.seed, force=args.force, workers=args.workers,
            transfer=args.transfer,
        )
    except (TuningError, GateError, ValueError,
            argparse.ArgumentTypeError) as exc:
        print(f"tuning failed: {exc}", file=sys.stderr)
        return 1

    dims = ", ".join(f"{k}={v}" for k, v in sorted(shape.items()))
    print(f"{args.family} on {arch.name} ({dims})")
    if result.cache_hit:
        print(f"served from tuning cache: {result.winner.label} "
              f"(modelled {result.score_seconds * 1e6:.1f}us)")
    else:
        stats = result.search_stats
        print(
            f"searched {stats['evaluated']} of "
            f"{stats['total_candidates']} candidates "
            f"({stats['pruned']} beam-pruned, {stats['skipped']} skipped)"
        )
        if result.transferred:
            print(f"transfer-seeded from: "
                  f"{', '.join(result.seeded_from)}")
        print()
        print(_format_leaderboard(result, args.rows_shown))
        print()
        print(f"winner: {result.winner.label} "
              f"(modelled {result.score_seconds * 1e6:.1f}us, "
              f"verified in repro.sim)")
    if result.cache_stats is not None:
        print(
            f"cache: {result.cache_stats['hits']} hits, "
            f"{result.cache_stats['misses']} misses, "
            f"{result.cache_stats['entries']} entries"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
