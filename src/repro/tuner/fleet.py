"""Process-pool fleet evaluation for the tuner.

The search drivers in :mod:`repro.tuner.search` funnel every kernel
build + costing through a batch evaluator; this module provides one
backed by a ``ProcessPoolExecutor``.  A candidate batch is split into
balanced contiguous shards (:func:`repro.serve.pool.shard_sequence`),
each worker evaluates its shard with the ordinary serial evaluator, and
the per-shard outcome lists are concatenated in shard order — restoring
exactly the serial outcome order.  Because the drivers' control flow
never depends on *who* evaluated a batch, the fleet leaderboards are
bit-identical to the serial ones (pinned by
``tests/tuner/test_fleet.py`` across all ten kernel families).

Everything that crosses the process boundary pickles through
:mod:`repro.pickling`: config spaces and candidates are plain data,
architectures and dtypes reduce to registry lookups, and oracles must
be module-level functions or picklable callables (both the default
roofline oracle and the calibrated
:class:`~repro.perfmodel.calibrate.FittedOracle` qualify).

The correctness gate has a fleet counterpart too:
:func:`run_gate_fleet` executes the top-k simulator verifications
concurrently while preserving the serial gate's verdict list and
winner choice exactly.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

from ..arch.gpu import Architecture
from ..serve.pool import shard_sequence
from ..sim import RunOptions
from .search import (
    EvalOutcome, Oracle, RankedCandidate, SearchResult, beam_search,
    exhaustive_search, perfmodel_oracle, serial_evaluator,
)
from .space import Candidate, ConfigSpace
from .verify import GateError, GateResult, check_candidate


def default_workers() -> int:
    """Worker count when the caller does not choose one."""
    return max(1, os.cpu_count() or 1)


def _evaluate_shard(
    space: ConfigSpace,
    candidates: Sequence[Candidate],
    shape: Dict[str, int],
    arch: Architecture,
    oracle: Optional[Oracle],
) -> List[EvalOutcome]:
    """Worker entry point: serially evaluate one contiguous shard."""
    return serial_evaluator(space, candidates, shape, arch,
                            oracle or perfmodel_oracle)


def _check_shard(
    space: ConfigSpace,
    arch: Architecture,
    candidates: Sequence[Candidate],
    shape: Dict[str, int],
    seed: int,
    options: Optional[RunOptions],
) -> List[GateResult]:
    """Worker entry point: run the correctness gate on a shard."""
    return [check_candidate(space, arch, c, shape, seed, options=options)
            for c in candidates]


class FleetEvaluator:
    """A batch evaluator sharding candidates across worker processes.

    Implements the :data:`repro.tuner.search.Evaluator` protocol, so it
    drops into :func:`exhaustive_search`/:func:`beam_search` unchanged.
    The pool is created lazily on first use (fork start method where
    available — workers inherit the warm module state instead of
    re-importing the IR stack) and reused across batches; use as a
    context manager or call :meth:`close` to release it.

    ``workers=1`` short-circuits to in-process evaluation — no pool,
    no pickling — so callers can treat worker count as a pure knob.
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = default_workers() if workers is None else max(1, workers)
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle -----------------------------------------------------
    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-posix fallback
                ctx = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "FleetEvaluator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- Evaluator protocol -------------------------------------------------
    def __call__(
        self,
        space: ConfigSpace,
        candidates: Sequence[Candidate],
        shape: Dict[str, int],
        arch: Architecture,
        oracle: Oracle,
    ) -> List[EvalOutcome]:
        if self.workers == 1 or len(candidates) <= 1:
            return serial_evaluator(space, candidates, shape, arch, oracle)
        shards = shard_sequence(list(candidates), self.workers)
        pool = self._executor()
        futures = [
            pool.submit(_evaluate_shard, space, shard, shape, arch, oracle)
            for shard in shards
        ]
        outcomes: List[EvalOutcome] = []
        for future in futures:
            outcomes.extend(future.result())
        return outcomes

    # -- parallel correctness gate ------------------------------------------
    def check_batch(
        self,
        space: ConfigSpace,
        arch: Architecture,
        candidates: Sequence[Candidate],
        shape: Dict[str, int],
        seed: int = 0,
        options: Optional[RunOptions] = None,
    ) -> List[GateResult]:
        """Gate a candidate batch concurrently, results in input order."""
        if self.workers == 1 or len(candidates) <= 1:
            return _check_shard(space, arch, candidates, shape, seed, options)
        shards = shard_sequence(list(candidates), self.workers)
        pool = self._executor()
        futures = [
            pool.submit(_check_shard, space, arch, shard, shape, seed,
                        options)
            for shard in shards
        ]
        results: List[GateResult] = []
        for future in futures:
            results.extend(future.result())
        return results


def parallel_exhaustive_search(
    space: ConfigSpace,
    shape: Dict[str, int],
    arch: Architecture,
    oracle: Optional[Oracle] = None,
    evaluator: Optional[FleetEvaluator] = None,
    workers: Optional[int] = None,
) -> SearchResult:
    """Fleet-sharded :func:`repro.tuner.search.exhaustive_search`."""
    with _maybe_owned(evaluator, workers) as fleet:
        return exhaustive_search(space, shape, arch, oracle=oracle,
                                 evaluator=fleet)


def parallel_beam_search(
    space: ConfigSpace,
    shape: Dict[str, int],
    arch: Architecture,
    beam: int = 6,
    oracle: Optional[Oracle] = None,
    evaluator: Optional[FleetEvaluator] = None,
    workers: Optional[int] = None,
    seeds: Optional[Sequence[Candidate]] = None,
) -> SearchResult:
    """Fleet-sharded :func:`repro.tuner.search.beam_search`."""
    with _maybe_owned(evaluator, workers) as fleet:
        return beam_search(space, shape, arch, beam=beam, oracle=oracle,
                           evaluator=fleet, seeds=seeds)


class _maybe_owned:
    """Context: use the caller's evaluator, or own a temporary one."""

    def __init__(self, evaluator: Optional[FleetEvaluator],
                 workers: Optional[int]):
        self._borrowed = evaluator
        self._owned: Optional[FleetEvaluator] = None

        self._workers = workers

    def __enter__(self) -> FleetEvaluator:
        if self._borrowed is not None:
            return self._borrowed
        self._owned = FleetEvaluator(self._workers)
        return self._owned

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._owned is not None:
            self._owned.close()


def run_gate_fleet(
    space: ConfigSpace,
    arch: Architecture,
    ranked: List[RankedCandidate],
    shape: Dict[str, int],
    top_k: int = 3,
    seed: int = 0,
    options: Optional[RunOptions] = None,
    evaluator: Optional[FleetEvaluator] = None,
    workers: Optional[int] = None,
) -> Tuple[RankedCandidate, List[GateResult]]:
    """Concurrent :func:`repro.tuner.verify.run_gate` — same verdicts.

    The serial gate executes the top-k unconditionally (their verdicts
    make the report) and then descends one candidate at a time until
    something passes.  The fleet gates the top-k as one concurrent
    batch; below the top-k it proceeds in worker-sized batches but
    truncates each at the first passer, so the returned verdict list —
    and therefore the winner — matches the serial gate exactly.
    """
    with _maybe_owned(evaluator, workers) as fleet:
        head = [rc.candidate for rc in ranked[:top_k]]
        results = fleet.check_batch(space, arch, head, shape, seed, options)
        winner: Optional[RankedCandidate] = None
        for rc, result in zip(ranked, results):
            if result.passed and winner is None:
                winner = rc
        position = len(head)
        while winner is None and position < len(ranked):
            batch = ranked[position:position + fleet.workers]
            verdicts = fleet.check_batch(
                space, arch, [rc.candidate for rc in batch], shape, seed,
                options)
            for rc, result in zip(batch, verdicts):
                results.append(result)
                if result.passed:
                    winner = rc
                    break
            position += len(batch)
    if winner is None:
        failures = "; ".join(
            f"{r.candidate.label} ({r.detail})" for r in results[:5]
        )
        raise GateError(
            f"no {space.family} candidate passed simulator verification "
            f"out of {len(results)} tried: {failures}"
        )
    return winner, results


__all__ = [
    "FleetEvaluator", "default_workers", "parallel_beam_search",
    "parallel_exhaustive_search", "run_gate_fleet",
]
