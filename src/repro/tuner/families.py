"""Decomposition spaces for the remaining kernel families.

:mod:`repro.tuner.space` declares the three original spaces (GEMM,
layernorm, fused MLP); this module completes the roster so every
conformance family (:data:`repro.conformance.FAMILIES`) is tunable and
the fleet driver's ``tune-all`` sweep covers the whole kernel library.
Each space follows the same contract: enumerate candidates the
builder's own validity predicates accept, build IR at any problem
scale, and pose the small-shape numpy verification problem the
correctness gate executes (mirroring the conformance harness cases).

Importing this module registers the spaces in
:data:`repro.tuner.space.SPACES`; :mod:`repro.tuner` imports it at
package load, so ``get_space`` sees all ten families.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..arch.gpu import Architecture
from ..kernels.config import (
    LstmConfig, NaiveGemmConfig, SoftmaxConfig,
)
from ..kernels.epilogue import build_gemm_epilogue
from ..kernels.fmha import build_fused_fmha
from ..kernels.gemm import build as build_naive_gemm
from ..kernels.gemm_parametric import build_parametric_gemm
from ..kernels.lstm import build as build_lstm
from ..kernels.moves import build_ldmatrix_kernel, ldmatrix_reference
from ..kernels.softmax import build as build_softmax
from ..library import funcs
from ..specs.kernel import Kernel
from .space import (
    MAX_THREADS_PER_BLOCK, REGISTER_BUDGET, Candidate, ConfigSpace,
    GemmSpace, SPACES, _random_fp16,
)


class SoftmaxSpace(ConfigSpace):
    """Row-wise softmax: one sequential thread per row; the block size
    trades occupancy against launch overhead."""

    family = "softmax"
    shape_keys = ("rows", "cols")

    THREADS_PER_BLOCK = (32, 64, 128, 256)

    def __init__(self, threads_per_block: Optional[Sequence[int]] = None):
        self.threads_per_block = tuple(
            threads_per_block or self.THREADS_PER_BLOCK)

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        rows = shape["rows"]
        for tpb in self.threads_per_block:
            if rows % tpb or tpb > MAX_THREADS_PER_BLOCK:
                continue
            yield Candidate(self.family, threads_per_block=tpb)

    def default(self, shape, arch) -> Candidate:
        for tpb in sorted(self.threads_per_block, reverse=True):
            if shape["rows"] % tpb == 0:
                return Candidate(self.family, threads_per_block=tpb)
        raise ValueError(f"no softmax block size divides {shape['rows']} rows")

    def build(self, candidate, shape) -> Kernel:
        tpb = candidate.params["threads_per_block"]
        return build_softmax(SoftmaxConfig(
            shape["rows"], shape["cols"], threads_per_block=tpb,
            name=f"graphene_softmax_t{tpb}",
        ))

    def verification_shape(self, candidate, shape):
        return {"rows": candidate.params["threads_per_block"],
                "cols": min(shape["cols"], 32)}

    def verification_problem(self, candidate, vshape, seed):
        rng = np.random.default_rng(seed)
        rows, cols = vshape["rows"], vshape["cols"]
        # Wide-range inputs so the stable max-subtraction path matters.
        x = ((rng.random((rows, cols)) - 0.5) * 8.0).astype(np.float16)
        y = np.zeros((rows, cols), dtype=np.float16)
        return {"X": x, "Y": y}, [("Y", funcs.softmax(x), 0.01)]


class LstmSpace(ConfigSpace):
    """Fused LSTM-cell decompositions: the block tile shared by both
    accumulated GEMMs and the warp arrangement over it."""

    family = "lstm"
    shape_keys = ("m", "n", "k")

    BLOCK_TILES = ((32, 16, 16), (32, 32, 16), (64, 32, 16), (64, 64, 16),
                   (64, 64, 32), (128, 64, 32), (128, 128, 32))
    WARP_GRIDS = ((1, 1), (1, 2), (2, 1), (2, 2))

    def __init__(self,
                 block_tiles: Optional[Sequence[Tuple[int, int, int]]] = None,
                 warp_grids: Optional[Sequence[Tuple[int, int]]] = None):
        self.block_tiles = tuple(block_tiles or self.BLOCK_TILES)
        self.warp_grids = tuple(warp_grids or self.WARP_GRIDS)

    def _valid(self, m, n, k, block_tile, warp_grid, arch) -> bool:
        bm, bn, bk = block_tile
        wm, wn = warp_grid
        if m % bm or n % bn or k % bk:
            return False
        if bm % (wm * 16) or bn % (wn * 8) or bk % 16 or bn % 8:
            return False
        if wm * wn * 32 > MAX_THREADS_PER_BLOCK:
            return False
        if (bm * bk + bk * bn) * 2 > arch.smem_bytes_per_sm:
            return False
        mi, ni = (bm // wm) // 16, (bn // wn) // 8
        return mi * ni <= 64 and mi * ni * 4 + mi * 8 + ni * 4 <= REGISTER_BUDGET

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        m, n, k = shape["m"], shape["n"], shape["k"]
        for block_tile in self.block_tiles:
            for warp_grid in self.warp_grids:
                if self._valid(m, n, k, block_tile, warp_grid, arch):
                    yield Candidate(self.family, block_tile=block_tile,
                                    warp_grid=warp_grid)

    def default(self, shape, arch) -> Candidate:
        cand = Candidate(self.family, block_tile=(128, 128, 32),
                         warp_grid=(2, 2))
        if self._valid(shape["m"], shape["n"], shape["k"],
                       (128, 128, 32), (2, 2), arch):
            return cand
        for fallback in self.candidates(shape, arch):
            return fallback
        raise ValueError(f"no legal LSTM configuration for shape {shape}")

    def build(self, candidate, shape) -> Kernel:
        bm, bn, bk = candidate.params["block_tile"]
        wm, wn = candidate.params["warp_grid"]
        return build_lstm(LstmConfig(
            shape["m"], shape["n"], shape["k"],
            block_tile=candidate.params["block_tile"],
            warp_grid=candidate.params["warp_grid"],
            name=f"graphene_lstm_{bm}x{bn}x{bk}_w{wm}x{wn}",
        ))

    def coarse_key(self, candidate):
        return ("block_tile", candidate.params["block_tile"])

    def verification_shape(self, candidate, shape):
        bm, bn, bk = candidate.params["block_tile"]
        return {"m": bm, "n": bn, "k": 2 * bk}

    def verification_problem(self, candidate, vshape, seed):
        rng = np.random.default_rng(seed)
        m, n, k = vshape["m"], vshape["n"], vshape["k"]
        x, w = _random_fp16(rng, m, k), _random_fp16(rng, k, n)
        h, r = _random_fp16(rng, m, k), _random_fp16(rng, k, n)
        bias = _random_fp16(rng, n)
        y = np.zeros((m, n), dtype=np.float16)
        ref = funcs.lstm_cell(x, w, h, r, bias)
        bindings = {"X": x, "W": w, "H": h, "R": r, "bias": bias, "Y": y}
        return bindings, [("Y", ref, 0.02)]


class FmhaSpace(ConfigSpace):
    """Fused multi-head attention: the K/V streaming chunk trades the
    staging buffer's footprint against the number of chunk round-trips
    (the query tile is pinned at 16 by the single-warp decomposition)."""

    family = "fmha"
    shape_keys = ("batch_heads", "seq", "head_dim")

    KV_CHUNKS = (16, 32, 64, 128)
    Q_TILE = 16

    def __init__(self, kv_chunks: Optional[Sequence[int]] = None):
        self.kv_chunks = tuple(kv_chunks or self.KV_CHUNKS)

    def _valid(self, seq, head_dim, kv_chunk, arch) -> bool:
        if seq % kv_chunk or kv_chunk % 16 or head_dim % 16:
            return False
        smem = (self.Q_TILE * head_dim * 2 + kv_chunk * head_dim * 2
                + self.Q_TILE * seq * 4 + self.Q_TILE * seq * 2)
        return smem <= arch.smem_bytes_per_sm

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        seq, head_dim = shape["seq"], shape["head_dim"]
        for kv_chunk in self.kv_chunks:
            if self._valid(seq, head_dim, kv_chunk, arch):
                yield Candidate(self.family, kv_chunk=kv_chunk)

    def default(self, shape, arch) -> Candidate:
        if self._valid(shape["seq"], shape["head_dim"], 64, arch):
            return Candidate(self.family, kv_chunk=64)
        for fallback in self.candidates(shape, arch):
            return fallback
        raise ValueError(f"no legal FMHA configuration for shape {shape}")

    def build(self, candidate, shape) -> Kernel:
        kv_chunk = candidate.params["kv_chunk"]
        return build_fused_fmha(
            shape["batch_heads"], shape["seq"], shape["head_dim"],
            q_tile=self.Q_TILE, kv_chunk=kv_chunk,
            name=f"graphene_fmha_kv{kv_chunk}",
        )

    def verification_shape(self, candidate, shape):
        kv_chunk = candidate.params["kv_chunk"]
        return {"batch_heads": 1,
                "seq": min(shape["seq"], 2 * kv_chunk),
                "head_dim": min(shape["head_dim"], 32)}

    def verification_problem(self, candidate, vshape, seed):
        rng = np.random.default_rng(seed)
        bh, seq, hd = (vshape["batch_heads"], vshape["seq"],
                       vshape["head_dim"])
        q = _random_fp16(rng, bh * seq, hd)
        k = _random_fp16(rng, bh * seq, hd)
        v = _random_fp16(rng, bh * seq, hd)
        o = np.zeros_like(q)
        ref = funcs.multi_head_attention(q, k, v, heads=bh)
        return {"Q": q, "K": k, "V": v, "O": o}, [("O", ref, 0.02)]


class NaiveGemmSpace(ConfigSpace):
    """Figure 8 GEMM: 2-D block tile x 2-D thread arrangement, each
    thread walking K with scalar FMAs over a register tile.

    The knob is the per-block tile (the grid is derived as
    ``(m / block_m, n / block_n)``) so a cached winner transfers across
    problem sizes — an absolute grid would name a different tiling at
    every shape and never seed a neighbour.
    """

    family = "gemm_naive"
    shape_keys = ("m", "n", "k")

    BLOCKS = ((32, 32), (64, 32), (64, 64), (128, 64), (128, 128))
    THREADS = ((2, 2), (4, 4), (4, 8), (8, 4), (8, 8))

    def __init__(self, blocks: Optional[Sequence[Tuple[int, int]]] = None,
                 threads: Optional[Sequence[Tuple[int, int]]] = None):
        self.blocks = tuple(blocks or self.BLOCKS)
        self.threads = tuple(threads or self.THREADS)

    def _valid(self, m, n, block, threads) -> bool:
        bm, bn = block
        tm, tn = threads
        if m % bm or n % bn:
            return False
        if bm % tm or bn % tn:
            return False
        if tm * tn > MAX_THREADS_PER_BLOCK:
            return False
        # Per-thread C tile lives in registers.
        return (bm // tm) * (bn // tn) <= 64

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        m, n = shape["m"], shape["n"]
        for block in self.blocks:
            for threads in self.threads:
                if self._valid(m, n, block, threads):
                    yield Candidate(self.family, block=block, threads=threads)

    def default(self, shape, arch) -> Candidate:
        if self._valid(shape["m"], shape["n"], (64, 64), (8, 8)):
            return Candidate(self.family, block=(64, 64), threads=(8, 8))
        for fallback in self.candidates(shape, arch):
            return fallback
        raise ValueError(f"no legal naive-GEMM configuration for {shape}")

    def build(self, candidate, shape) -> Kernel:
        bm, bn = candidate.params["block"]
        return build_naive_gemm(NaiveGemmConfig(
            shape["m"], shape["n"], shape["k"],
            grid=(shape["m"] // bm, shape["n"] // bn),
            threads=candidate.params["threads"],
        ))

    def coarse_key(self, candidate):
        return ("block", candidate.params["block"])

    def verification_shape(self, candidate, shape):
        bm, bn = candidate.params["block"]
        # A single block (grid 1x1) keeps the lockstep run tiny.
        return {"m": bm, "n": bn, "k": min(shape["k"], 8)}

    def verification_problem(self, candidate, vshape, seed):
        rng = np.random.default_rng(seed)
        m, n, k = vshape["m"], vshape["n"], vshape["k"]
        a, b = _random_fp16(rng, m, k), _random_fp16(rng, k, n)
        c = np.zeros((m, n), dtype=np.float16)
        return {"A": a, "B": b, "C": c}, [("C", funcs.gemm(a, b), 0.02)]


class ParametricGemmSpace(ConfigSpace):
    """Symbolic-M GEMM (Section 3.4): row-tile and thread count over the
    predicated decomposition.  ``m`` in the tuning shape is the
    *expected* row count the grid is provisioned for; launches bind the
    actual ``M`` at run time."""

    family = "gemm_parametric"
    shape_keys = ("m", "n", "k")

    ROW_TILES = (8, 16, 32)
    THREADS = (32, 64, 128)

    def __init__(self, row_tiles: Optional[Sequence[int]] = None,
                 threads: Optional[Sequence[int]] = None):
        self.row_tiles = tuple(row_tiles or self.ROW_TILES)
        self.threads = tuple(threads or self.THREADS)

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        n = shape["n"]
        for row_tile in self.row_tiles:
            for threads in self.threads:
                if n % threads or threads > MAX_THREADS_PER_BLOCK:
                    continue
                yield Candidate(self.family, row_tile=row_tile,
                                threads=threads)

    def default(self, shape, arch) -> Candidate:
        for threads in (128, 64, 32):
            if shape["n"] % threads == 0:
                return Candidate(self.family, row_tile=32, threads=threads)
        raise ValueError(f"no legal parametric-GEMM configuration for {shape}")

    @staticmethod
    def _grid_rows(m: int, row_tile: int) -> int:
        return max(1, -(-m // row_tile))

    def build(self, candidate, shape) -> Kernel:
        row_tile = candidate.params["row_tile"]
        return build_parametric_gemm(
            shape["n"], shape["k"], row_tile=row_tile,
            max_grid_rows=self._grid_rows(shape["m"], row_tile),
            threads=candidate.params["threads"],
        )

    def coarse_key(self, candidate):
        return ("row_tile", candidate.params["row_tile"])

    def verification_shape(self, candidate, shape):
        row_tile = candidate.params["row_tile"]
        threads = candidate.params["threads"]
        # A ragged M (not a multiple of the row tile) exercises the
        # guards on every partial tile.
        return {"m": row_tile + max(1, row_tile // 2),
                "n": threads, "k": min(shape["k"], 16)}

    def verification_symbols(self, candidate, vshape):
        return {"M": vshape["m"]}

    def verification_problem(self, candidate, vshape, seed):
        rng = np.random.default_rng(seed)
        m_sym, n, k = vshape["m"], vshape["n"], vshape["k"]
        row_tile = candidate.params["row_tile"]
        alloc_rows = self._grid_rows(m_sym, row_tile) * row_tile
        a = _random_fp16(rng, alloc_rows, k)
        b = _random_fp16(rng, k, n)
        c = np.zeros((alloc_rows, n), dtype=np.float16)
        # Guarded threads never write rows >= M: they must stay zero.
        ref = np.vstack([funcs.gemm(a[:m_sym], b),
                         np.zeros((alloc_rows - m_sym, n), np.float32)])
        return {"A": a, "B": b, "C": c}, [("C", ref, 0.02)]


class GemmEpilogueSpace(ConfigSpace):
    """Fused ``C = act(A @ B + bias)``: the GEMM block-tile/warp-grid
    space with the pointwise epilogue applied to the accumulator views
    (Ampere path; the epilogue builder fixes staging to unswizzled
    single-stage, so those axes are absent here)."""

    family = "gemm_epilogue"
    shape_keys = ("m", "n", "k")

    def __init__(self,
                 block_tiles: Optional[Sequence[Tuple[int, int, int]]] = None,
                 warp_grids: Optional[Sequence[Tuple[int, int]]] = None,
                 bias: bool = True, activation: str = "relu"):
        self._gemm = GemmSpace(block_tiles, warp_grids,
                               swizzles=(False,), stage_counts=(1,))
        self.bias = bias
        self.activation = activation

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        if not arch.supports("cp_async"):
            return
        for base in self._gemm._ampere_candidates(shape, arch):
            yield Candidate(self.family,
                            block_tile=base.params["block_tile"],
                            warp_grid=base.params["warp_grid"])

    def default(self, shape, arch) -> Candidate:
        m, n, k = shape["m"], shape["n"], shape["k"]
        if arch.supports("cp_async") and self._gemm._ampere_valid(
                m, n, k, (128, 128, 32), (2, 2), 1, arch):
            return Candidate(self.family, block_tile=(128, 128, 32),
                             warp_grid=(2, 2))
        for fallback in self.candidates(shape, arch):
            return fallback
        raise ValueError(
            f"no legal GEMM-epilogue configuration for shape {shape}")

    def build(self, candidate, shape) -> Kernel:
        return build_gemm_epilogue(
            shape["m"], shape["n"], shape["k"], arch="ampere",
            bias=self.bias, activation=self.activation,
            block_tile=candidate.params["block_tile"],
            warp_grid=candidate.params["warp_grid"],
        )

    def coarse_key(self, candidate):
        return ("block_tile", candidate.params["block_tile"])

    def verification_shape(self, candidate, shape):
        bm, bn, bk = candidate.params["block_tile"]
        return {"m": bm, "n": bn, "k": 2 * bk}

    def verification_problem(self, candidate, vshape, seed):
        rng = np.random.default_rng(seed)
        m, n, k = vshape["m"], vshape["n"], vshape["k"]
        a, b = _random_fp16(rng, m, k), _random_fp16(rng, k, n)
        bias = _random_fp16(rng, n)
        c = np.zeros((m, n), dtype=np.float16)
        ref = funcs.gemm_bias_act(a, b, bias, self.activation)
        bindings = {"A": a, "B": b, "bias": bias, "C": c}
        return bindings, [("C", ref, 0.05)]


class MovesSpace(ConfigSpace):
    """The ldmatrix data-movement microkernel.  Its decomposition is
    fixed by the instruction (a warp loading four 8x8 fragments), so
    the space is a single point — kept so the ``tune-all`` sweep and
    the fleet differential tests cover every conformance family."""

    family = "moves"
    shape_keys = ()

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        yield Candidate(self.family, variant="ldmatrix_x4")

    def default(self, shape, arch) -> Candidate:
        return Candidate(self.family, variant="ldmatrix_x4")

    def build(self, candidate, shape) -> Kernel:
        return build_ldmatrix_kernel()

    def verification_shape(self, candidate, shape):
        return {}

    def verification_problem(self, candidate, vshape, seed):
        # Distinct values per element make the fragment mapping exact;
        # a pure move must be bit-perfect (tolerance 0).
        src = np.arange(256, dtype=np.float16).reshape(16, 16)
        out = np.zeros((32, 8), dtype=np.float16)
        return {"src": src, "out": out}, [("out", ldmatrix_reference(src),
                                           0.0)]


SPACES.update({
    SoftmaxSpace.family: SoftmaxSpace,
    LstmSpace.family: LstmSpace,
    FmhaSpace.family: FmhaSpace,
    NaiveGemmSpace.family: NaiveGemmSpace,
    ParametricGemmSpace.family: ParametricGemmSpace,
    GemmEpilogueSpace.family: GemmEpilogueSpace,
    MovesSpace.family: MovesSpace,
})
