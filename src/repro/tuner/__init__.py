"""``repro.tuner``: autotuning over Graphene decomposition spaces.

Closes the loop the paper leaves to "automated search" (Sections 1, 6):

1. a :class:`~repro.tuner.space.ConfigSpace` enumerates one kernel
   family's legal decompositions (illegal tilings pruned before IR
   construction);
2. a search driver builds each candidate's IR and ranks it with the
   :mod:`repro.perfmodel` roofline as the oracle
   (:mod:`repro.tuner.search`);
3. the top-ranked candidates must execute correctly in the functional
   simulator against numpy references before one may be returned
   (:mod:`repro.tuner.verify`);
4. winners persist in a JSON :class:`~repro.tuner.cache.TuningCache`
   keyed by (family, shape, dtype, arch), so repeated runs are instant.

The CLI leaderboard lives in ``python -m repro.tuner``; kernels expose
the result through their ``from_tuned(...)`` constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..arch import architecture, registered
from ..arch.gpu import Architecture
from ..perfmodel import CostBreakdown
from ..specs.kernel import Kernel
from .cache import TuningCache, default_cache_path
from .search import (
    Oracle, RankedCandidate, SearchResult, beam_search, exhaustive_search,
    perfmodel_oracle,
)
from .space import Candidate, ConfigSpace, GemmSpace, LayernormSpace, \
    MlpSpace, SPACES, get_space, swizzle_for_row
from . import families as _families  # noqa: F401  registers the other spaces
from .families import (
    FmhaSpace, GemmEpilogueSpace, LstmSpace, MovesSpace, NaiveGemmSpace,
    ParametricGemmSpace, SoftmaxSpace,
)
from .verify import GateError, GateResult, check_candidate, run_gate

class TuningError(RuntimeError):
    pass


def resolve_arch(arch: Union[str, Architecture]) -> Architecture:
    """Accept an :class:`Architecture` or any registered name/alias.

    Delegates to the :mod:`repro.arch` registry (which owns the alias
    table — ``sm86``/``sm80`` → ampere, ``sm90`` → hopper, ...).
    """
    if isinstance(arch, Architecture):
        return arch
    try:
        return architecture(str(arch))
    except KeyError:
        raise TuningError(
            f"unknown architecture {arch!r}; known: {list(registered())}"
        ) from None


@dataclass
class TuningResult:
    """Everything one tuning run decided, plus how it decided it."""

    family: str
    shape: Dict[str, int]
    arch: Architecture
    space: ConfigSpace
    winner: Candidate
    #: Modelled end-to-end seconds of the winner (launches included).
    score_seconds: float
    launches: int
    #: Full cost attribution; ``None`` when served from the cache.
    cost: Optional[CostBreakdown]
    ranked: List[RankedCandidate] = field(default_factory=list)
    gate_results: List[GateResult] = field(default_factory=list)
    cache_hit: bool = False
    cache_key: Optional[str] = None
    cache_stats: Optional[Dict[str, int]] = None
    search_stats: Optional[Dict[str, int]] = None
    #: True when a transfer-seeded search produced the winner.
    transferred: bool = False
    #: Labels of the cached neighbour winners that seeded the search.
    seeded_from: List[str] = field(default_factory=list)

    def build_kernel(self) -> Kernel:
        """Instantiate the winning configuration at full problem scale."""
        return self.space.build(self.winner, self.shape)


def _resolve_cache(cache) -> Optional[TuningCache]:
    if cache is False:
        return None
    if cache is None:
        return TuningCache(default_cache_path())
    if isinstance(cache, TuningCache):
        return cache
    return TuningCache(cache)


#: Cached neighbour winners consulted when ``transfer=True``.
TRANSFER_NEIGHBOURS = 2


def tune(
    family: str,
    shape: Dict[str, int],
    arch: Union[str, Architecture] = "ampere",
    *,
    space: Optional[ConfigSpace] = None,
    cache=None,
    search: str = "beam",
    beam: int = 6,
    top_k: int = 3,
    oracle: Optional[Oracle] = None,
    seed: int = 0,
    force: bool = False,
    workers: int = 1,
    transfer: bool = False,
) -> TuningResult:
    """Select the best verified configuration for one kernel launch.

    ``cache`` accepts a path, a :class:`TuningCache`, ``None`` (the
    default on-disk cache, overridable via ``GRAPHENE_TUNER_CACHE``) or
    ``False`` (no persistence).  ``force=True`` re-tunes even on a
    cache hit.  ``search`` is ``"beam"`` (default) or ``"exhaustive"``.

    ``workers > 1`` shards candidate evaluation and the correctness
    gate across a process fleet (:mod:`repro.tuner.fleet`) — the
    leaderboard and verdicts are bit-identical to the serial path.
    ``transfer=True`` consults the cache's nearest neighbouring shapes
    (:meth:`TuningCache.nearest_entries`) and, when any exist, runs a
    seed-only search (``beam=0``) expanding just the transferred
    winners' coarse groups instead of cold-searching the space; a seed
    whose group is illegal here, or whose expansion fails the
    correctness gate, falls back to the cold ``search`` path.
    """
    space = space or get_space(family)
    shape = space.validate_shape(shape)
    architecture = resolve_arch(arch)
    cache_obj = _resolve_cache(cache)
    #: Close deferred stats only for caches this call constructed.
    owns_cache = cache_obj is not None and not isinstance(cache, TuningCache)
    key = TuningCache.make_key(
        space.family, shape, space.dtype, architecture.name
    )

    try:
        if cache_obj is not None and not force:
            entry = cache_obj.get(key)
            if entry is not None:
                winner = space.candidate_from_params(entry["params"])
                return TuningResult(
                    family=space.family, shape=shape, arch=architecture,
                    space=space, winner=winner,
                    score_seconds=entry["score_us"] * 1e-6,
                    launches=entry.get("launches", 1), cost=None,
                    cache_hit=True, cache_key=key,
                    cache_stats=cache_obj.stats,
                )

        seeds: List[Candidate] = []
        if transfer and cache_obj is not None:
            for _nkey, entry, _distance in cache_obj.nearest_entries(
                    key, k=TRANSFER_NEIGHBOURS):
                try:
                    seeds.append(space.candidate_from_params(entry["params"]))
                except (KeyError, TypeError, ValueError):
                    continue  # stale entry from an older space revision

        from .fleet import FleetEvaluator, run_gate_fleet

        def finish(result, transferred, via_gate_fleet, evaluator):
            if not result.ranked:
                raise TuningError(
                    f"the {space.family} space is empty for shape {shape} "
                    f"on {architecture.name} ({result.total_candidates} raw "
                    f"candidates, {len(result.skipped)} skipped)"
                )
            if via_gate_fleet:
                winner_rc, gate_results = run_gate_fleet(
                    space, architecture, result.ranked, shape, top_k=top_k,
                    seed=seed, evaluator=evaluator,
                )
            else:
                winner_rc, gate_results = run_gate(
                    space, architecture, result.ranked, shape, top_k=top_k,
                    seed=seed,
                )
            if cache_obj is not None:
                cache_obj.put(key, {
                    "family": space.family,
                    "label": winner_rc.candidate.label,
                    "params": winner_rc.candidate.json_params(),
                    "score_us": winner_rc.score_seconds * 1e6,
                    "launches": winner_rc.launches,
                    "tflops": winner_rc.cost.tflops(),
                    "smem_bank_conflicts":
                        winner_rc.cost.smem_bank_conflicts,
                    "searched": result.evaluated,
                })
            return TuningResult(
                family=space.family, shape=shape, arch=architecture,
                space=space, winner=winner_rc.candidate,
                score_seconds=winner_rc.score_seconds,
                launches=winner_rc.launches, cost=winner_rc.cost,
                ranked=result.ranked, gate_results=gate_results,
                cache_hit=False, cache_key=key,
                cache_stats=cache_obj.stats if cache_obj is not None
                else None,
                search_stats={
                    "total_candidates": result.total_candidates,
                    "evaluated": result.evaluated,
                    "pruned": result.pruned,
                    "skipped": len(result.skipped),
                },
                transferred=transferred,
                seeded_from=list(result.seeded_from),
            )

        parallel = workers > 1
        with FleetEvaluator(workers) if parallel else _null_context() \
                as fleet:
            if seeds:
                try:
                    result = beam_search(
                        space, shape, architecture, beam=0, oracle=oracle,
                        evaluator=fleet, seeds=seeds,
                    )
                    return finish(result, True, parallel, fleet)
                except (ValueError, GateError):
                    # No seed group legal here, or every transferred
                    # expansion failed verification: cold-search.
                    pass
            if search == "beam":
                result = beam_search(space, shape, architecture, beam=beam,
                                     oracle=oracle, evaluator=fleet)
            elif search == "exhaustive":
                result = exhaustive_search(space, shape, architecture,
                                           oracle=oracle, evaluator=fleet)
            else:
                raise TuningError(
                    f"unknown search driver {search!r}; use 'beam' or "
                    f"'exhaustive'"
                )
            return finish(result, False, parallel, fleet)
    finally:
        if owns_cache:
            cache_obj.close()


class _null_context:
    """Stands in for a fleet when tuning runs serially."""

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


__all__ = [
    "Candidate", "ConfigSpace", "FmhaSpace", "GateError",
    "GateResult", "GemmEpilogueSpace", "GemmSpace", "LayernormSpace",
    "LstmSpace", "MlpSpace", "MovesSpace", "NaiveGemmSpace", "Oracle",
    "ParametricGemmSpace", "RankedCandidate", "SPACES", "SearchResult",
    "SoftmaxSpace", "TRANSFER_NEIGHBOURS", "TuningCache", "TuningError",
    "TuningResult", "beam_search", "check_candidate", "default_cache_path",
    "exhaustive_search", "get_space", "perfmodel_oracle", "resolve_arch",
    "run_gate", "swizzle_for_row", "tune",
]
