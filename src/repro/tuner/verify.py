"""The correctness gate: no config leaves the tuner unexecuted.

The performance model ranks candidates by modelled time alone — a
candidate whose layouts are wrong (or whose decomposition silently
drops work) can still *look* fastest.  Before the tuner may return a
configuration, its kernel is built at a small shape the tiling legally
covers and executed in :mod:`repro.sim` against the numpy references of
:mod:`repro.library.funcs`; wrong numerics reject the candidate and the
gate falls through to the next-ranked one.

The run executes with ``sanitize=True``: a candidate whose decomposition
races on shared memory (or reads out of bounds / uninitialized) is
rejected even when lockstep simulation happens to compute the right
numbers — see :mod:`repro.sim.sanitizer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..arch.gpu import Architecture
from ..sim import RunOptions, SanitizerError, SimulationError, Simulator
from .search import RankedCandidate
from .space import Candidate, ConfigSpace


class GateError(RuntimeError):
    """No candidate of the ranked space passed simulator verification."""


@dataclass
class GateResult:
    """The verdict of one simulator run."""

    candidate: Candidate
    passed: bool
    max_error: Optional[float]
    detail: str = ""
    #: Measured counters of the verification run (``profile=True`` only).
    profile: Optional["KernelProfile"] = None

    @property
    def status(self) -> str:
        return "pass" if self.passed else "FAIL"


def check_candidate(
    space: ConfigSpace,
    arch: Architecture,
    candidate: Candidate,
    shape: Dict[str, int],
    seed: int = 0,
    profile: bool = False,
    options: Optional[RunOptions] = None,
) -> GateResult:
    """Execute one candidate at its small verification shape.

    ``profile=True`` attaches the run's measured counters
    (:class:`repro.sim.KernelProfile`) to the returned
    :class:`GateResult`, so tuner reports can show measured bank
    conflicts next to the oracle's modelled ones.  ``options`` carries
    the remaining run settings (engine, seed of the run itself); the
    gate always forces ``sanitize=True`` on top of it — an unsanitized
    gate would defeat its purpose.
    """
    if options is None:
        options = RunOptions()
    options = options.merged(sanitize=True, profile=profile)
    kernel_profile = None
    try:
        vshape = space.verification_shape(candidate, shape)
        kernel = space.build(candidate, vshape)
        bindings, checks = space.verification_problem(candidate, vshape, seed)
        symbols = space.verification_symbols(candidate, vshape)
        result = Simulator(arch).run(kernel, bindings, symbols,
                                     options=options)
        kernel_profile = result.profile
    except SanitizerError as exc:
        return GateResult(candidate, False, None,
                          f"rejected by sanitizer: {exc}")
    except (SimulationError, ValueError, KeyError) as exc:
        return GateResult(candidate, False, None,
                          f"execution failed: {exc}")
    worst = 0.0
    for name, ref, tol in checks:
        got = bindings[name].astype(np.float32)
        if got.shape != np.asarray(ref).shape:
            return GateResult(
                candidate, False, None,
                f"output {name} shape {got.shape} != reference "
                f"{np.asarray(ref).shape}",
                profile=kernel_profile,
            )
        err = float(np.abs(got - np.asarray(ref, dtype=np.float32)).max())
        worst = max(worst, err)
        if not np.isfinite(err) or err > tol:
            return GateResult(
                candidate, False, err,
                f"output {name} deviates from the numpy reference by "
                f"{err:.4g} (tolerance {tol:g}) at shape {vshape}",
                profile=kernel_profile,
            )
    return GateResult(candidate, True, worst, profile=kernel_profile)


def run_gate(
    space: ConfigSpace,
    arch: Architecture,
    ranked: List[RankedCandidate],
    shape: Dict[str, int],
    top_k: int = 3,
    seed: int = 0,
    options: Optional[RunOptions] = None,
) -> Tuple[RankedCandidate, List[GateResult]]:
    """Verify the leaderboard's top-k; return the best passing config.

    The first ``top_k`` candidates are all executed (their verdicts make
    the leaderboard report); if every one of them fails, the gate keeps
    descending the ranking until something passes.  Raises
    :class:`GateError` when the whole ranking is numerically wrong.
    """
    results: List[GateResult] = []
    winner: Optional[RankedCandidate] = None
    for i, rc in enumerate(ranked):
        if i >= top_k and winner is not None:
            break
        result = check_candidate(space, arch, rc.candidate, shape, seed,
                                 options=options)
        results.append(result)
        if result.passed and winner is None:
            winner = rc
    if winner is None:
        failures = "; ".join(
            f"{r.candidate.label} ({r.detail})" for r in results[:5]
        )
        raise GateError(
            f"no {space.family} candidate passed simulator verification "
            f"out of {len(results)} tried: {failures}"
        )
    return winner, results
