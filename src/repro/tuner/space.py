"""Declarative configuration spaces per kernel family.

The paper positions optimized kernels as *points in a decomposition
space* (Section 1): block/warp/thread tilings, shared-memory swizzles
and pipeline stage counts.  A :class:`ConfigSpace` makes one family's
space explicit — it enumerates :class:`Candidate` configurations,
prunes illegal tilings *before* IR construction with the kernels' own
validity predicates (:func:`repro.kernels.gemm_optimized.validate_gemm_config`),
builds the kernel IR for any candidate at any problem scale, and poses
the small-shape numpy verification problem the correctness gate runs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.gpu import Architecture
from ..kernels.gemm_optimized import (
    build_ampere_tc_gemm, build_ampere_tc_gemm_pipelined,
    build_volta_tc_gemm, validate_gemm_config,
)
from ..kernels.config import LayernormConfig
from ..kernels.hopper import (
    WG_K_F16, WG_K_FP8, WG_M, WG_N, build_hopper_fp8_gemm,
    build_hopper_sparse24_gemm, validate_hopper_gemm_config,
)
from ..kernels.layernorm import build as build_layernorm_cfg
from ..kernels.mlp import build_fused_mlp
from ..layout.linear import (
    LinearLayoutError, prove_conflict_free, synthesize_bank_swizzle,
)
from ..layout.swizzle import IDENTITY_SWIZZLE, Swizzle
from ..library import funcs
from ..specs.kernel import Kernel

#: CUDA's hard per-block thread limit.
MAX_THREADS_PER_BLOCK = 1024
#: Per-thread fp32 register budget available to accumulators+fragments
#: (256 architectural registers minus addressing/staging temporaries).
REGISTER_BUDGET = 224


class Candidate:
    """One point of a family's decomposition space."""

    __slots__ = ("family", "params")

    def __init__(self, family: str, **params):
        self.family = family
        self.params = params

    @property
    def label(self) -> str:
        parts = []
        for key in sorted(self.params):
            value = self.params[key]
            if isinstance(value, (tuple, list)):
                value = "x".join(str(v) for v in value)
            elif isinstance(value, bool):
                value = "on" if value else "off"
            parts.append(f"{key}={value}")
        return " ".join(parts)

    def json_params(self) -> Dict:
        """JSON-serialisable copy of the parameters (for the cache)."""
        return {k: list(v) if isinstance(v, tuple) else v
                for k, v in self.params.items()}

    def _key(self):
        return (self.family, tuple(sorted(self.params.items())))

    def __eq__(self, other):
        return isinstance(other, Candidate) and self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        return f"Candidate({self.family}: {self.label})"


class ConfigSpace:
    """Base interface every kernel family's space implements."""

    family: str = ""
    shape_keys: Tuple[str, ...] = ()
    dtype: str = "fp16"

    def validate_shape(self, shape: Dict[str, int]) -> Dict[str, int]:
        missing = [k for k in self.shape_keys if shape.get(k) is None]
        if missing:
            raise ValueError(
                f"{self.family} tuning needs shape keys {missing} "
                f"(got {sorted(k for k, v in shape.items() if v is not None)})"
            )
        return {k: int(shape[k]) for k in self.shape_keys}

    def candidates(self, shape: Dict[str, int],
                   arch: Architecture) -> Iterator[Candidate]:
        raise NotImplementedError

    def default(self, shape: Dict[str, int],
                arch: Architecture) -> Candidate:
        """The hand-written configuration the repo's kernels default to."""
        raise NotImplementedError

    def build(self, candidate: Candidate, shape: Dict[str, int]) -> Kernel:
        raise NotImplementedError

    def launches(self, candidate: Candidate, shape: Dict[str, int]) -> int:
        """Sequential kernel launches one candidate needs (fusion depth)."""
        return 1

    def coarse_key(self, candidate: Candidate):
        """Grouping key for the pruned-beam search's first stage."""
        return candidate.label

    def candidate_from_params(self, params: Dict) -> Candidate:
        restored = {
            k: tuple(v) if isinstance(v, list) else v
            for k, v in params.items()
        }
        return Candidate(self.family, **restored)

    # -- correctness-gate problem --------------------------------------------
    def verification_shape(self, candidate: Candidate,
                           shape: Dict[str, int]) -> Dict[str, int]:
        """A small problem this candidate legally tiles."""
        raise NotImplementedError

    def verification_problem(self, candidate: Candidate,
                             vshape: Dict[str, int], seed: int):
        """Returns ``(bindings, checks)`` for one simulator run.

        ``bindings`` are the numpy arrays the kernel launches over;
        ``checks`` is a list of ``(output_name, reference, tolerance)``.
        """
        raise NotImplementedError

    def verification_symbols(self, candidate: Candidate,
                             vshape: Dict[str, int]) -> Optional[Dict[str, int]]:
        """Symbol bindings the verification launch needs (parametric
        kernels bind their symbolic dimensions here); ``None`` for the
        fully static families."""
        return None


def swizzle_for_row(row_elems: int) -> Optional[Swizzle]:
    """Bank-spreading XOR swizzle for fp16 rows of ``row_elems`` values.

    *Synthesized, not searched*: delegates to
    :func:`repro.layout.linear.synthesize_bank_swizzle`, which solves
    for the cheapest CuTe ``Swizzle<bits, 3, shift>`` whose bank-group
    matrix has full rank over F2 — the certificate that every ldmatrix
    wavefront touches all eight bank groups.  (The earlier closed-form
    guess ``shift = log2(rows) - 3`` sourced its XOR field from *inside*
    the 128-byte wavefront for 16/32-element rows, provably leaving
    rank deficient — the simulator measured those "swizzled" layouts at
    the same conflict count as naive row-major.)  Returns ``None`` when
    rows are not a power of two or the identity layout is already
    conflict-free.
    """
    return synthesize_bank_swizzle(row_elems)


def certified_conflict_free(row_elems: int) -> bool:
    """True when the synthesized (or identity) swizzle for these rows
    carries the full-rank no-bank-conflict certificate."""
    try:
        swizzle = synthesize_bank_swizzle(row_elems) or IDENTITY_SWIZZLE
        return prove_conflict_free(row_elems, swizzle)
    except LinearLayoutError:
        return False


def _random_fp16(rng, *shape):
    return (rng.random(shape, dtype=np.float64) - 0.5).astype(np.float16)


class GemmSpace(ConfigSpace):
    """``C = A @ B`` Tensor Core GEMM decompositions.

    Ampere candidates vary the block tile, the warp arrangement, the
    staging-buffer swizzle and the pipeline stage count; Volta
    candidates vary the warp grid and quad-pair tiling.  Note the
    roofline oracle assumes perfect copy/math overlap, so 2-stage
    pipelining ties its 1-stage twin under the model — it is kept in
    the space because its shared-memory footprint (and therefore its
    feasibility) differs.
    """

    family = "gemm"
    shape_keys = ("m", "n", "k")

    AMPERE_BLOCK_TILES = tuple(
        (bm, bn, bk)
        for bm in (64, 128, 256)
        for bn in (64, 128, 256)
        for bk in (16, 32, 64)
    )
    AMPERE_WARP_GRIDS = ((1, 1), (1, 2), (2, 1), (2, 2), (2, 4), (4, 2),
                         (4, 4))
    VOLTA_WARP_GRIDS = ((1, 1), (2, 2), (2, 4), (4, 2), (4, 4))
    VOLTA_QP_TILES = ((1, 1), (1, 2), (2, 1), (2, 2))
    VOLTA_BKS = (16, 32)

    def __init__(
        self,
        block_tiles: Optional[Sequence[Tuple[int, int, int]]] = None,
        warp_grids: Optional[Sequence[Tuple[int, int]]] = None,
        # Swizzled first: beam search judges a coarse group by its first
        # member, which must be the optimistic (conflict-free) variant.
        # The default "auto" halves the space: when the F2 rank
        # certificate proves the synthesized swizzle conflict-free for
        # a tile's staging rows there is nothing to search — the
        # unswizzled variant is dominated by construction — so only the
        # swizzled candidate is enumerated; tiles without a certificate
        # fall back to searching both.
        swizzles: Sequence = ("auto",),
        stage_counts: Sequence[int] = (1, 2),
    ):
        self.block_tiles = tuple(block_tiles) if block_tiles else None
        self.warp_grids = tuple(warp_grids) if warp_grids else None
        self.swizzles = tuple(swizzles)
        self.stage_counts = tuple(stage_counts)

    # -- enumeration ------------------------------------------------------------
    def candidates(self, shape, arch) -> Iterator[Candidate]:
        # Capability split, not a name check: cp.async staging is what
        # the Ampere-style decomposition needs (Hopper inherits it).
        if arch.supports("cp_async"):
            yield from self._ampere_candidates(shape, arch)
        else:
            yield from self._volta_candidates(shape, arch)

    def _ampere_candidates(self, shape, arch) -> Iterator[Candidate]:
        m, n, k = shape["m"], shape["n"], shape["k"]
        tiles = self.block_tiles or self.AMPERE_BLOCK_TILES
        grids = self.warp_grids or self.AMPERE_WARP_GRIDS
        for block_tile in tiles:
            for warp_grid in grids:
                for stages in self.stage_counts:
                    if not self._ampere_valid(m, n, k, block_tile,
                                              warp_grid, stages, arch):
                        continue
                    for swizzle in self._swizzle_axis(block_tile):
                        yield Candidate(
                            self.family, block_tile=block_tile,
                            warp_grid=warp_grid, swizzle=swizzle,
                            stages=stages,
                        )

    def _swizzle_axis(self, block_tile) -> Tuple[bool, ...]:
        """The swizzle choices actually worth enumerating for a tile."""
        axis: List[bool] = []
        for choice in self.swizzles:
            if choice == "auto":
                _, bn, bk = block_tile
                if certified_conflict_free(bk) and \
                        certified_conflict_free(bn):
                    expanded = (True,)
                else:
                    expanded = (True, False)
            else:
                expanded = (choice,)
            for value in expanded:
                if value not in axis:
                    axis.append(value)
        return tuple(axis)

    def _ampere_valid(self, m, n, k, block_tile, warp_grid, stages,
                      arch) -> bool:
        try:
            validate_gemm_config(m, n, k, block_tile, warp_grid,
                                 stages=stages)
        except ValueError:
            return False
        bm, bn, bk = block_tile
        wm, wn = warp_grid
        threads = wm * wn * 32
        if threads > MAX_THREADS_PER_BLOCK:
            return False
        if bk % 8 or bn % 8:  # vectorized 8-element staging rows
            return False
        smem = stages * (bm * bk + bk * bn) * 2
        if smem > arch.smem_bytes_per_sm:
            return False
        mi, ni = (bm // wm) // 16, (bn // wn) // 8
        regs = mi * ni * 4 + mi * 8 + ni * 4
        return mi * ni <= 64 and regs <= REGISTER_BUDGET

    def _volta_candidates(self, shape, arch) -> Iterator[Candidate]:
        m, n, k = shape["m"], shape["n"], shape["k"]
        grids = self.warp_grids or self.VOLTA_WARP_GRIDS
        for warp_grid in grids:
            wm, wn = warp_grid
            for qp_tile in self.VOLTA_QP_TILES:
                tm, tn = qp_tile
                for bk in self.VOLTA_BKS:
                    block_tile = (wm * 16 * tm, wn * 16 * tn, bk)
                    if self.block_tiles and block_tile not in self.block_tiles:
                        continue
                    if not self._volta_valid(m, n, k, block_tile, warp_grid,
                                             qp_tile, arch):
                        continue
                    yield Candidate(
                        self.family, block_tile=block_tile,
                        warp_grid=warp_grid, qp_tile=qp_tile,
                    )

    def _volta_valid(self, m, n, k, block_tile, warp_grid, qp_tile,
                     arch) -> bool:
        try:
            validate_gemm_config(m, n, k, block_tile, warp_grid,
                                 qp_tile=qp_tile)
        except ValueError:
            return False
        bm, bn, bk = block_tile
        wm, wn = warp_grid
        if wm * wn * 32 > MAX_THREADS_PER_BLOCK:
            return False
        if bk % 8 or bn % 8:
            return False
        if (bm * bk + bk * bn) * 2 > arch.smem_bytes_per_sm:
            return False
        tm, tn = qp_tile
        return tm * tn * 8 + tm * 4 + tn * 4 <= REGISTER_BUDGET

    # -- construction -----------------------------------------------------------
    def default(self, shape, arch) -> Candidate:
        m, n, k = shape["m"], shape["n"], shape["k"]
        if arch.supports("cp_async"):
            cand = Candidate(self.family, block_tile=(128, 128, 32),
                             warp_grid=(2, 2), swizzle=False, stages=1)
            ok = self._ampere_valid(m, n, k, (128, 128, 32), (2, 2), 1, arch)
        else:
            cand = Candidate(self.family, block_tile=(128, 128, 32),
                             warp_grid=(4, 4), qp_tile=(2, 2))
            ok = self._volta_valid(m, n, k, (128, 128, 32), (4, 4), (2, 2),
                                   arch)
        if ok:
            return cand
        for fallback in self.candidates(shape, arch):
            return fallback
        raise ValueError(
            f"no legal GEMM configuration for shape {shape} on {arch.name}"
        )

    def build(self, candidate, shape) -> Kernel:
        m, n, k = shape["m"], shape["n"], shape["k"]
        params = candidate.params
        if "qp_tile" in params:
            return build_volta_tc_gemm(
                m, n, k, block_tile=params["block_tile"],
                warp_grid=params["warp_grid"], qp_tile=params["qp_tile"],
            )
        bm, bn, bk = params["block_tile"]
        if params.get("swizzle"):
            swizzle_a = swizzle_for_row(bk) or IDENTITY_SWIZZLE
            swizzle_b = swizzle_for_row(bn) or IDENTITY_SWIZZLE
        else:
            swizzle_a = swizzle_b = IDENTITY_SWIZZLE
        if params.get("stages", 1) == 2:
            return build_ampere_tc_gemm_pipelined(
                m, n, k, block_tile=params["block_tile"],
                warp_grid=params["warp_grid"],
                swizzle_a=swizzle_a, swizzle_b=swizzle_b,
            )
        return build_ampere_tc_gemm(
            m, n, k, block_tile=params["block_tile"],
            warp_grid=params["warp_grid"],
            swizzle_a=swizzle_a, swizzle_b=swizzle_b,
        )

    def coarse_key(self, candidate):
        return ("block_tile", candidate.params["block_tile"])

    # -- correctness gate --------------------------------------------------------
    def verification_shape(self, candidate, shape):
        bm, bn, bk = candidate.params["block_tile"]
        return {"m": bm, "n": bn, "k": 2 * bk}

    def verification_problem(self, candidate, vshape, seed):
        rng = np.random.default_rng(seed)
        m, n, k = vshape["m"], vshape["n"], vshape["k"]
        a = _random_fp16(rng, m, k)
        b = _random_fp16(rng, k, n)
        c = np.zeros((m, n), dtype=np.float16)
        ref = funcs.gemm(a, b)
        return {"A": a, "B": b, "C": c}, [("C", ref, 0.02)]


class LayernormSpace(ConfigSpace):
    """Row-normalisation decompositions: warp-per-row lanes combining
    partials with butterfly shuffles vs one sequential thread per row,
    each over a rows-per-block sweep."""

    family = "layernorm"
    shape_keys = ("rows", "hidden")

    WARPS_PER_BLOCK = (1, 2, 4, 8)

    def __init__(self, warps_per_block: Optional[Sequence[int]] = None,
                 modes: Sequence[bool] = (True, False)):
        self.warps_per_block = tuple(warps_per_block or self.WARPS_PER_BLOCK)
        self.modes = tuple(modes)

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        rows, hidden = shape["rows"], shape["hidden"]
        for warp_per_row in self.modes:
            for wpb in self.warps_per_block:
                if warp_per_row:
                    # one warp per row: lanes hold hidden/32-value chunks
                    if hidden % 32 or rows % wpb:
                        continue
                else:
                    if rows % (wpb * 32):
                        continue
                yield Candidate(self.family, warp_per_row=warp_per_row,
                                warps_per_block=wpb)

    def default(self, shape, arch) -> Candidate:
        return Candidate(self.family, warp_per_row=True, warps_per_block=4)

    def build(self, candidate, shape) -> Kernel:
        mode = "wpr" if candidate.params["warp_per_row"] else "tpr"
        wpb = candidate.params["warps_per_block"]
        return build_layernorm_cfg(LayernormConfig(
            shape["rows"], shape["hidden"],
            warps_per_block=wpb,
            warp_per_row=candidate.params["warp_per_row"],
            name=f"graphene_layernorm_{mode}_w{wpb}",
        ))

    def coarse_key(self, candidate):
        return ("warp_per_row", candidate.params["warp_per_row"])

    def verification_shape(self, candidate, shape):
        wpb = candidate.params["warps_per_block"]
        rows_quantum = wpb if candidate.params["warp_per_row"] else wpb * 32
        return {"rows": 2 * rows_quantum, "hidden": shape["hidden"]}

    def verification_problem(self, candidate, vshape, seed):
        rng = np.random.default_rng(seed)
        rows, hidden = vshape["rows"], vshape["hidden"]
        x = _random_fp16(rng, rows, hidden)
        gamma = (rng.random(hidden) * 2).astype(np.float16)
        beta = _random_fp16(rng, hidden)
        y = np.zeros((rows, hidden), dtype=np.float16)
        ref = funcs.layernorm(x, gamma, beta)
        bindings = {"X": x, "gamma": gamma, "beta": beta, "Y": y}
        return bindings, [("Y", ref, 0.02)]


class MlpSpace(ConfigSpace):
    """Fused-MLP decompositions: activation block rows, warp arrangement
    and *fusion depth* — how many GEMM+bias+act layers one kernel keeps
    resident in shared memory.  Depth-``d`` candidates cost
    ``layers/d`` sequential launches of the ``d``-layer kernel."""

    family = "mlp"
    shape_keys = ("m", "hidden", "layers")

    BLOCK_ROWS = (32, 64, 128)
    WARP_GRIDS = ((1, 1), (1, 2), (2, 1), (2, 2), (4, 2))

    def __init__(self, block_rows: Optional[Sequence[int]] = None,
                 warp_grids: Optional[Sequence[Tuple[int, int]]] = None,
                 depths: Optional[Sequence[int]] = None):
        self.block_rows = tuple(block_rows or self.BLOCK_ROWS)
        self.warp_grids = tuple(warp_grids or self.WARP_GRIDS)
        self.depths = tuple(depths) if depths else None

    def _depths(self, layers: int) -> List[int]:
        if self.depths is not None:
            return [d for d in self.depths if layers % d == 0]
        return [d for d in range(1, layers + 1) if layers % d == 0]

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        m, hidden, layers = shape["m"], shape["hidden"], shape["layers"]
        if hidden % 16:
            return
        for block_rows in self.block_rows:
            if m % block_rows:
                continue
            smem = (block_rows * hidden + hidden * hidden) * 2
            if smem > arch.smem_bytes_per_sm:
                continue
            for warp_grid in self.warp_grids:
                wm, wn = warp_grid
                if block_rows % (wm * 16) or hidden % (wn * 8) or hidden % 8:
                    continue
                if wm * wn * 32 > MAX_THREADS_PER_BLOCK:
                    continue
                mi = block_rows // (wm * 16)
                ni = hidden // (wn * 8)
                if mi * ni > 64 or mi * ni * 4 + mi * 8 + ni * 4 > REGISTER_BUDGET:
                    continue
                for depth in self._depths(layers):
                    yield Candidate(self.family, block_rows=block_rows,
                                    warp_grid=warp_grid, depth=depth)

    def default(self, shape, arch) -> Candidate:
        return Candidate(self.family, block_rows=128, warp_grid=(2, 2),
                         depth=shape["layers"])

    def launches(self, candidate, shape) -> int:
        return shape["layers"] // candidate.params["depth"]

    def build(self, candidate, shape) -> Kernel:
        # One kernel fuses `depth` layers; verification shapes may carry
        # fewer total layers than the tuned depth.
        depth = min(candidate.params["depth"], shape["layers"])
        return build_fused_mlp(
            shape["m"], shape["hidden"], depth,
            block_rows=candidate.params["block_rows"],
            warp_grid=candidate.params["warp_grid"],
            name=f"graphene_fused_mlp_d{depth}",
        )

    def coarse_key(self, candidate):
        return ("rows_depth", candidate.params["block_rows"],
                candidate.params["depth"])

    def verification_shape(self, candidate, shape):
        # Verifying two fused layers exercises the smem ping-pong; the
        # per-layer decomposition is depth-independent.
        return {
            "m": candidate.params["block_rows"],
            "hidden": shape["hidden"],
            "layers": min(candidate.params["depth"], 2),
        }

    def verification_problem(self, candidate, vshape, seed):
        rng = np.random.default_rng(seed)
        m, hidden, layers = vshape["m"], vshape["hidden"], vshape["layers"]
        x = _random_fp16(rng, m, hidden)
        weights = [_random_fp16(rng, hidden, hidden) for _ in range(layers)]
        biases = [_random_fp16(rng, hidden) for _ in range(layers)]
        y = np.zeros((m, hidden), dtype=np.float16)
        ref = funcs.mlp(x, weights, biases)
        bindings = {"X": x, "Y": y}
        for layer in range(layers):
            bindings[f"W{layer}"] = weights[layer]
            bindings[f"bias{layer}"] = biases[layer]
        return bindings, [("Y", ref, 0.05)]


class HopperFp8GemmSpace(ConfigSpace):
    """Hopper fp8 warpgroup GEMM decompositions.

    The wgmma instruction shape is fixed (m64n64k32), so the space
    varies the TMA staging depth ``block_k`` and whether the kernel
    runs the 2x-accumulation recipe (a zeroed partial tile folded into
    the running fp32 accumulator per K-slice).  Candidates only exist
    on architectures carrying the ``wgmma`` + ``fp8`` capabilities.
    """

    family = "gemm_fp8"
    shape_keys = ("m", "n", "k")
    dtype = "fp8e4m3"

    BLOCK_KS = (32, 64, 128)

    def __init__(self, block_ks: Optional[Sequence[int]] = None,
                 acc_modes: Sequence[bool] = (True, False)):
        self.block_ks = tuple(block_ks or self.BLOCK_KS)
        self.acc_modes = tuple(acc_modes)

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        if not (arch.supports("wgmma") and arch.supports("fp8")):
            return
        m, n, k = shape["m"], shape["n"], shape["k"]
        for block_k in self.block_ks:
            try:
                validate_hopper_gemm_config(m, n, k, block_k, WG_K_FP8)
            except ValueError:
                continue
            smem = (WG_M * block_k + block_k * WG_N) * 2
            if smem > arch.smem_bytes_per_sm:
                continue
            for two_stage in self.acc_modes:
                yield Candidate(self.family, block_k=block_k,
                                two_stage_acc=two_stage)

    def default(self, shape, arch) -> Candidate:
        for block_k in (64, 32):
            try:
                validate_hopper_gemm_config(
                    shape["m"], shape["n"], shape["k"], block_k, WG_K_FP8)
            except ValueError:
                continue
            return Candidate(self.family, block_k=block_k,
                             two_stage_acc=True)
        raise ValueError(
            f"no legal fp8 warpgroup GEMM configuration for shape {shape}"
        )

    def build(self, candidate, shape) -> Kernel:
        return build_hopper_fp8_gemm(
            shape["m"], shape["n"], shape["k"],
            block_k=candidate.params["block_k"],
            two_stage_acc=candidate.params["two_stage_acc"],
        )

    def coarse_key(self, candidate):
        return ("block_k", candidate.params["block_k"])

    def verification_shape(self, candidate, shape):
        return {"m": WG_M, "n": WG_N,
                "k": 2 * candidate.params["block_k"]}

    def verification_problem(self, candidate, vshape, seed):
        from ..tensor.dtypes import FP8E4M3

        rng = np.random.default_rng(seed)
        m, n, k = vshape["m"], vshape["n"], vshape["k"]
        a = FP8E4M3.quantize(
            (rng.random((m, k), dtype=np.float64) - 0.5).astype(np.float32))
        b = FP8E4M3.quantize(
            (rng.random((k, n), dtype=np.float64) - 0.5).astype(np.float32))
        c = np.zeros((m, n), dtype=np.float16)
        ref = (a.astype(np.float64) @ b.astype(np.float64)
               ).astype(np.float16)
        return {"A": a, "B": b, "C": c}, [("C", ref, 0.05)]


class Sparse24GemmSpace(ConfigSpace):
    """Hopper 2:4 structured-sparse GEMM decompositions.

    Varies the TMA staging depth of the compressed operand; the
    decompress-to-shared + f16 wgmma pipeline is otherwise fixed.
    """

    family = "gemm_sparse24"
    shape_keys = ("m", "n", "k")

    BLOCK_KS = (16, 32, 64)

    def __init__(self, block_ks: Optional[Sequence[int]] = None):
        self.block_ks = tuple(block_ks or self.BLOCK_KS)

    def candidates(self, shape, arch) -> Iterator[Candidate]:
        if not arch.supports("sparse_24"):
            return
        m, n, k = shape["m"], shape["n"], shape["k"]
        for block_k in self.block_ks:
            try:
                validate_hopper_gemm_config(m, n, k, block_k, WG_K_F16,
                                            sparse=True)
            except ValueError:
                continue
            smem = (WG_M * block_k // 2) * (2 + 4) \
                + (WG_M * block_k + block_k * WG_N) * 2
            if smem > arch.smem_bytes_per_sm:
                continue
            yield Candidate(self.family, block_k=block_k)

    def default(self, shape, arch) -> Candidate:
        for block_k in (32, 16):
            try:
                validate_hopper_gemm_config(
                    shape["m"], shape["n"], shape["k"], block_k, WG_K_F16,
                    sparse=True)
            except ValueError:
                continue
            return Candidate(self.family, block_k=block_k)
        raise ValueError(
            f"no legal 2:4-sparse GEMM configuration for shape {shape}"
        )

    def build(self, candidate, shape) -> Kernel:
        return build_hopper_sparse24_gemm(
            shape["m"], shape["n"], shape["k"],
            block_k=candidate.params["block_k"],
        )

    def coarse_key(self, candidate):
        return ("block_k", candidate.params["block_k"])

    def verification_shape(self, candidate, shape):
        return {"m": WG_M, "n": WG_N,
                "k": 2 * candidate.params["block_k"]}

    def verification_problem(self, candidate, vshape, seed):
        from ..kernels.hopper import random_sparse24

        rng = np.random.default_rng(seed)
        m, n, k = vshape["m"], vshape["n"], vshape["k"]
        comp, meta, dense = random_sparse24(rng, m, k)
        b = _random_fp16(rng, k, n)
        c = np.zeros((m, n), dtype=np.float16)
        ref = (dense.astype(np.float64) @ b.astype(np.float64)
               ).astype(np.float16)
        bindings = {"A_comp": comp, "A_meta": meta, "B": b, "C": c}
        return bindings, [("C", ref, 0.05)]


SPACES = {
    GemmSpace.family: GemmSpace,
    LayernormSpace.family: LayernormSpace,
    MlpSpace.family: MlpSpace,
    HopperFp8GemmSpace.family: HopperFp8GemmSpace,
    Sparse24GemmSpace.family: Sparse24GemmSpace,
}


def get_space(family: str, **kwargs) -> ConfigSpace:
    try:
        cls = SPACES[family]
    except KeyError:
        raise ValueError(
            f"unknown kernel family {family!r}; available: {sorted(SPACES)}"
        ) from None
    return cls(**kwargs)
