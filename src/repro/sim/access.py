"""Compiled tensor accessors for the functional simulator.

A tensor view in the IR is a fixed object whose offset expression contains
symbolic loop/thread variables.  For speed, each view is compiled once
into closures: a base-offset evaluator, the constant per-element offsets
of its (concrete) shape, and guard evaluators for predicated views.

Power-of-two views take the *linear* (F2) compile path: the relative
offset array is produced by XOR-accumulating whole lane vectors — one
numpy operation per layout *bit* instead of one coordinate walk per
*element* (see :mod:`repro.layout.linear`).  Views the F2 form cannot
represent (non-power-of-two shapes, non-power-of-two strides, symbolic
leaves) fall back to the per-element expression path; both paths
produce bit-identical offset lists.  ``set_index_compiler`` /
``index_compiler`` select the path globally, mainly so differential
tests and the plan-compile benchmark can pin one side.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..ir.expr import Add, Const, FloorDiv, IntExpr, Mod, Mul, Sub, Var
from ..layout import inttuple as it
from ..layout.linear import LinearLayoutError, to_linear
from ..tensor.tensor import Tensor, Tile


def compile_expr(expr: IntExpr) -> Callable[[dict], int]:
    """Compile an expression into a fast closure over an env dict."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda env: value
    if isinstance(expr, Var):
        name = expr.name
        return lambda env: env[name]
    lhs = compile_expr(expr.lhs)
    rhs = compile_expr(expr.rhs)
    if isinstance(expr, Add):
        return lambda env: lhs(env) + rhs(env)
    if isinstance(expr, Sub):
        return lambda env: lhs(env) - rhs(env)
    if isinstance(expr, Mul):
        return lambda env: lhs(env) * rhs(env)
    if isinstance(expr, FloorDiv):
        return lambda env: lhs(env) // rhs(env)
    if isinstance(expr, Mod):
        return lambda env: lhs(env) % rhs(env)
    raise TypeError(f"cannot compile expression {expr!r}")


#: Index-compiler mode: "auto" tries the F2 linear path and falls back,
#: "expression" always walks coordinates through the layout algebra.
_INDEX_MODES = ("auto", "expression")
_index_mode = "auto"

#: The F2 path has fixed setup cost (bit-matrix construction plus a
#: vectorized apply); below this view size the coordinate walk is
#: cheaper, so "auto" keeps it.  Measured crossover: size 8.
LINEAR_MIN_SIZE = 8


def get_index_compiler() -> str:
    return _index_mode


def set_index_compiler(mode: str) -> None:
    """Select the accessor compile path and drop compiled accessors."""
    global _index_mode
    if mode not in _INDEX_MODES:
        raise ValueError(
            f"unknown index compiler {mode!r}; choose from {_INDEX_MODES}")
    _index_mode = mode
    clear_accessor_caches()


@contextmanager
def index_compiler(mode: str):
    """Temporarily pin the accessor compile path (tests/benchmarks)."""
    previous = _index_mode
    set_index_compiler(mode)
    try:
        yield
    finally:
        set_index_compiler(previous)


def clear_accessor_caches() -> None:
    """Forget all compiled accessors and tile views (cold-start state)."""
    _ACCESSOR_CACHE.clear()
    _CACHE_KEEPALIVE.clear()
    _TILE_VIEWS.clear()


class TensorAccessor:
    """Pre-compiled element enumeration for one tensor view.

    ``offsets(env)`` returns the physical (post-swizzle) element offsets
    of the view's elements in colexicographic coordinate order;
    ``mask(env)`` returns per-element validity under the view's guards.
    ``compiled_via`` records which path built the offset table
    (``"linear"`` or ``"expression"``).
    """

    __slots__ = (
        "tensor", "_base", "_rel", "_coords", "_guards", "size",
        "compiled_via",
    )

    def __init__(self, tensor: Tensor):
        if isinstance(tensor.element, Tile):
            raise TypeError(
                f"cannot build an element accessor for tiled tensor {tensor!r};"
                " index a tile first"
            )
        shape = tensor.layout.shape
        size = it.product(shape)
        if not isinstance(size, int):
            raise TypeError(f"cannot enumerate symbolic tensor {tensor!r}")
        self.tensor = tensor
        self.size = size
        self._base = compile_expr(tensor.offset)
        coords = None
        rel = None
        compiled_via = "expression"
        if shape == ():
            rel = [0]
        elif _index_mode == "auto" and size >= LINEAR_MIN_SIZE:
            try:
                lin = to_linear(tensor.layout)
            except LinearLayoutError:
                lin = None
            if lin is not None:
                rel = lin.apply_to_range(size).tolist()
                compiled_via = "linear"
        if rel is None:
            coords = list(it.iter_coords(shape))
            rel = [tensor.layout(c) for c in coords]
            if any(not isinstance(r, int) for r in rel):
                raise TypeError(
                    f"tensor {tensor!r} has symbolic strides; cannot simulate"
                )
        self._rel = rel
        self._coords = coords
        self.compiled_via = compiled_via
        guards: List[Tuple[Callable, Callable, List[int]]] = []
        if tensor.guards is not None:
            for d, guard in enumerate(tensor.guards):
                if guard is None:
                    continue
                origin = compile_expr(guard.origin)
                extent = compile_expr(guard.extent)
                # Logical coordinate along dim d for each element.
                if coords is not None:
                    dim_coords = [_dim_coord(c, d) for c in coords]
                else:
                    dim_coords = _dim_coords_vec(shape, size, d)
                guards.append((origin, extent, dim_coords))
        self._guards = guards

    def offsets(self, env: dict) -> List[int]:
        base = self._base(env)
        tensor = self.tensor
        if tensor.swizzle.is_identity():
            return [base + r for r in self._rel]
        sw = tensor.swizzle
        return [sw(base + r) for r in self._rel]

    def mask(self, env: dict) -> Optional[List[bool]]:
        """Validity of each element, or None when unguarded."""
        if not self._guards:
            return None
        valid = [True] * self.size
        for origin, extent, dim_coords in self._guards:
            base = origin(env)
            limit = extent(env)
            for i, c in enumerate(dim_coords):
                if base + c >= limit:
                    valid[i] = False
        return valid


def _dim_coord(coord, dim: int) -> int:
    """The flat logical coordinate along top-level dim ``dim``.

    Views of lower rank than their guards (e.g. a scalar element view)
    contribute 0: their position is already folded into the guard
    origin during indexing.
    """
    if not isinstance(coord, tuple):
        return coord if dim == 0 else 0
    if dim >= len(coord):
        return 0
    entry = coord[dim]
    if isinstance(entry, tuple):
        # Hierarchical dims do not participate in ragged-guard logic.
        raise TypeError("guards on hierarchical dimensions are unsupported")
    return entry


def _dim_coords_vec(shape, size: int, dim: int) -> List[int]:
    """Vectorized :func:`_dim_coord` over all colex coordinates.

    Mode ``dim``'s coordinate cycles with period ``prod(dims[:dim])``
    (mode 0 fastest); matches the per-coordinate walk bit for bit,
    including the TypeError contract for hierarchical guard dims.
    """
    dims = it.as_tuple(shape) if shape != () else ()
    if dim >= len(dims):
        return [0] * size
    entry = dims[dim]
    if it.is_tuple(entry):
        raise TypeError("guards on hierarchical dimensions are unsupported")
    pre = 1
    for mode in dims[:dim]:
        pre *= it.product(mode)
    return ((np.arange(size) // pre) % entry).tolist()


_ACCESSOR_CACHE: Dict[int, TensorAccessor] = {}
_CACHE_KEEPALIVE: Dict[int, Tensor] = {}


def accessor(tensor: Tensor) -> TensorAccessor:
    """A cached accessor for a tensor view (views are immutable)."""
    key = id(tensor)
    acc = _ACCESSOR_CACHE.get(key)
    if acc is None or acc.tensor is not tensor:
        acc = TensorAccessor(tensor)
        _ACCESSOR_CACHE[key] = acc
        _CACHE_KEEPALIVE[key] = tensor
    return acc


_TILE_VIEWS: Dict[int, Tuple[Tensor, list]] = {}


def tile_views(tensor: Tensor) -> List[Tensor]:
    """All tile sub-views of a (one-level) tiled tensor, colex order.

    Untiled tensors yield themselves; results are cached so repeated
    fragment reads reuse the same view objects (and thus accessors).
    """
    cached = _TILE_VIEWS.get(id(tensor))
    if cached is not None and cached[0] is tensor:
        return cached[1]
    if not isinstance(tensor.element, Tile):
        views = [tensor]
    else:
        views = [
            tensor[crd] for crd in it.iter_coords(tensor.layout.shape)
        ]
    _TILE_VIEWS[id(tensor)] = (tensor, views)
    return views
