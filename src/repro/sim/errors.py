"""Simulator error types (shared by the interpreter and the plan engine)."""

from __future__ import annotations


class SimulationError(RuntimeError):
    pass
