"""Compiled launch plans: the vectorized simulator execution engine.

The reference interpreter (:mod:`repro.sim.interp`, ``engine="reference"``)
re-walks the statement tree once per block and re-evaluates layout index
expressions per lane and per element in pure Python.  Graphene layouts
are affine integer-tuple maps, so the full data-to-thread mapping of
each spec can instead be *compiled once* into numpy index arrays and
executed as batched gathers/scatters across all lanes of a spec at once.

The plan layer sits under ``Simulator.run``:

* :class:`LaunchPlan` lowers a kernel's decomposition tree into a
  replayable node tree with pre-compiled loop bounds, predicate splits
  and per-spec :class:`_SpecPlan` executors.
* :class:`ViewPlan` precomputes each tensor view's ``(lane, element) ->
  flat offset`` index array (and guard mask).  Arrays are cached keyed
  on the values of the view's free variables: loop-invariant views are
  hoisted to a single entry reused across iterations *and* blocks;
  loop-dependent views get one entry per binding.
* Replay is block-batched: blocks are independent, so one compiled plan
  replays across the whole grid, with every cross-block-invariant index
  array computed exactly once.
* Profiler counters, sanitizer access streams and the shared-memory
  bank model are fed from the same index arrays (in bulk, and — for the
  order-sensitive sanitizer — in the reference engine's exact per-lane
  emission order), so ``RunResult.machine/profile/sanitizer`` outputs
  are bit-identical to the reference interpreter.

Atomics without a vectorized runner fall back to the scalar executor
through :class:`~repro.sim.context.ExecCtx`, with register-file state
flushed/reloaded around the call.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import sys
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch import fragments as frag
from ..arch import ptx
from ..ir.stmt import Barrier, Block, Comment, ForLoop, If, SpecStmt
from ..layout import inttuple as it
from ..layout.linear import LinearLayoutError, to_linear
from ..specs.atomic import match_atomic
from ..specs.base import Allocate, Init, Move
from ..tensor.memspace import GL, RF, SH
from ..tensor.tensor import Tensor, Tile
from .access import accessor, compile_expr, tile_views
from .context import ExecCtx
from .errors import SimulationError

#: Per-view cap on cached (offsets, mask) entries; loop-variant views
#: with more distinct bindings than this recompute after a cache clear.
VIEW_CACHE_ENTRIES = 512

#: Per-spec cap on cached profiler charge deltas (see _Replay.exec_spec);
#: an overflow clears the cache and the next executions re-measure.
CHARGE_CACHE_ENTRIES = 256


class ViewPlan:
    """Precomputed ``(lane, element) -> offset`` arrays for one view.

    ``offsets_mask(env)`` returns the physical element offsets of every
    lane of the owning group as one ``(lanes, elements)`` int64 array
    (post-swizzle, colex element order) plus the guard mask (or None).
    Results are cached keyed on the values of the view's free variables
    other than ``threadIdx.x`` — an empty key means the view is fully
    loop- and block-invariant and is computed exactly once per plan.
    """

    __slots__ = (
        "tensor", "size", "itemsize", "is_gl", "is_sh", "is_rf",
        "lane_arr", "_base", "_rel", "_swizzle", "_guards", "_key_vars",
        "_cache",
    )

    def __init__(self, tensor, lanes):
        acc = accessor(tensor)
        self.tensor = tensor
        self.size = acc.size
        self.itemsize = tensor.dtype.bytes
        self.is_gl = tensor.mem == GL
        self.is_sh = tensor.mem == SH
        self.is_rf = tensor.mem == RF
        self.lane_arr = np.asarray(lanes, dtype=np.int64)
        self._base = acc._base
        self._rel = np.asarray(acc._rel, dtype=np.int64)
        sw = tensor.swizzle
        self._swizzle = None if sw.is_identity() else sw
        names = set(tensor.offset.free_vars())
        guards = []
        if tensor.guards is not None:
            for guard in tensor.guards:
                if guard is not None:
                    names |= guard.origin.free_vars()
                    names |= guard.extent.free_vars()
        for origin, extent, dim_coords in acc._guards:
            guards.append(
                (origin, extent, np.asarray(dim_coords, dtype=np.int64))
            )
        self._guards = guards
        names.discard("threadIdx.x")
        self._key_vars = tuple(sorted(names))
        self._cache: Dict[tuple, tuple] = {}

    def offsets_mask(self, env: dict):
        key = tuple(env[v] for v in self._key_vars)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        lenv = dict(env)
        lenv["threadIdx.x"] = self.lane_arr
        nlanes = self.lane_arr.shape[0]
        base = np.asarray(self._base(lenv), dtype=np.int64)
        if base.ndim == 0:
            base = np.broadcast_to(base, (nlanes,))
        offs = base[:, None] + self._rel[None, :]
        if self._swizzle is not None:
            offs = self._swizzle(offs)
        mask = None
        for origin, extent, coords in self._guards:
            lo = np.asarray(origin(lenv), dtype=np.int64)
            limit = np.asarray(extent(lenv), dtype=np.int64)
            if lo.ndim:
                lo = lo[:, None]
            if limit.ndim:
                limit = limit[:, None]
            ok = (lo + coords[None, :]) < limit
            mask = ok if mask is None else (mask & ok)
        offs = np.ascontiguousarray(offs)
        offs.setflags(write=False)
        if mask is not None:
            mask = np.ascontiguousarray(np.broadcast_to(mask, offs.shape))
            mask.setflags(write=False)
        if len(self._cache) >= VIEW_CACHE_ENTRIES:
            self._cache.clear()
        entry = (offs, mask)
        self._cache[key] = entry
        return entry


class GroupPlan:
    """One lane group of a spec: its lanes and per-view plans."""

    __slots__ = ("lanes", "lane_arr", "nlanes", "_views")

    def __init__(self, lanes):
        self.lanes = list(lanes)
        self.lane_arr = np.asarray(self.lanes, dtype=np.int64)
        self.nlanes = len(self.lanes)
        self._views: Dict[int, ViewPlan] = {}

    def view(self, tensor) -> ViewPlan:
        vp = self._views.get(id(tensor))
        if vp is None or vp.tensor is not tensor:
            vp = ViewPlan(tensor, self.lanes)
            self._views[id(tensor)] = vp
        return vp


class _RegFile:
    """Batched per-block register-file storage for one replay.

    The reference engine keeps one numpy array per ``(block, thread,
    name)``; gathering across lanes then costs a Python loop.  During a
    vectorized replay each register buffer is staged as one
    ``(nthreads, capacity)`` array indexed by absolute lane id, and
    :meth:`flush` materialises the per-thread ``machine._regs`` entries
    (sized exactly as the reference engine would have sized them) at
    block end or before a scalar-fallback spec.
    """

    __slots__ = ("_machine", "_bid", "_nthreads", "_arrays", "_maxreq",
                 "_touched")

    def __init__(self, machine, bid: int, nthreads: int):
        self._machine = machine
        self._bid = bid
        self._nthreads = nthreads
        self._arrays: Dict[str, np.ndarray] = {}
        self._maxreq: Dict[str, np.ndarray] = {}
        self._touched: Dict[str, np.ndarray] = {}

    def require(self, name: str, dtype, lane_ids: np.ndarray,
                per_row_min: np.ndarray) -> np.ndarray:
        arr = self._arrays.get(name)
        need = int(per_row_min.max())
        if arr is None:
            declared = self._machine._declared.get(name)
            width = max(need, declared[1] if declared else 0)
            np_dtype = (declared[0] if declared else dtype).np_dtype
            arr = np.zeros((self._nthreads, max(width, 1)), dtype=np_dtype)
            self._arrays[name] = arr
            self._maxreq[name] = np.zeros(self._nthreads, dtype=np.int64)
            self._touched[name] = np.zeros(self._nthreads, dtype=bool)
        elif arr.shape[1] < need:
            grown = np.zeros((self._nthreads, need), dtype=arr.dtype)
            grown[:, : arr.shape[1]] = arr
            self._arrays[name] = grown
            arr = grown
        np.maximum.at(self._maxreq[name], lane_ids, per_row_min)
        self._touched[name][lane_ids] = True
        return arr

    def flush(self) -> None:
        """Materialise staged registers into ``machine._regs``."""
        regs = self._machine._regs
        declared = self._machine._declared
        for name, arr in self._arrays.items():
            maxreq = self._maxreq[name]
            decl = declared.get(name)
            dsize = decl[1] if decl else 0
            for t in np.flatnonzero(self._touched[name]):
                t = int(t)
                size = max(dsize, int(maxreq[t]))
                regs[(self._bid, t, name)] = arr[t, :size].copy()

    def reload(self) -> None:
        """Pull ``machine._regs`` back into staging (post scalar fallback)."""
        for (block, t, name), buf in self._machine._regs.items():
            if block != self._bid:
                continue
            arr = self._arrays.get(name)
            if arr is None:
                arr = np.zeros((self._nthreads, max(buf.size, 1)),
                               dtype=buf.dtype)
                self._arrays[name] = arr
                self._maxreq[name] = np.zeros(self._nthreads, dtype=np.int64)
                self._touched[name] = np.zeros(self._nthreads, dtype=bool)
            elif arr.shape[1] < buf.size:
                grown = np.zeros((self._nthreads, buf.size), dtype=arr.dtype)
                grown[:, : arr.shape[1]] = arr
                self._arrays[name] = grown
                arr = grown
            arr[t, : buf.size] = buf
            self._maxreq[name][t] = max(int(self._maxreq[name][t]), buf.size)
            self._touched[name][t] = True


# -- compiled statement nodes --------------------------------------------------
class _Seq:
    __slots__ = ("items",)

    def __init__(self, items):
        self.items = tuple(items)

    def execute(self, run, env, preds):
        for node in self.items:
            node.execute(run, env, preds)


class _Loop:
    __slots__ = ("start", "stop", "step", "name", "body")

    def __init__(self, start, stop, step, name, body):
        self.start = start
        self.stop = stop
        self.step = step
        self.name = name
        self.body = body

    def execute(self, run, env, preds):
        for value in range(self.start(env), self.stop(env), self.step(env)):
            env[self.name] = value
            self.body.execute(run, env, preds)
        env.pop(self.name, None)


class _If:
    __slots__ = ("uniform", "varying", "then", "orelse")

    def __init__(self, uniform, varying, then, orelse):
        self.uniform = tuple(uniform)
        self.varying = tuple(varying)
        self.then = then
        self.orelse = orelse

    def execute(self, run, env, preds):
        if self.varying and self.orelse is not None:
            raise SimulationError(
                "If with thread-dependent predicates cannot carry an "
                "else branch: lanes diverge individually, so no "
                "uniform branch decision exists (emit a second If "
                "guarded by the complement predicate instead)"
            )
        if all(lhs(env) < rhs(env) for lhs, rhs in self.uniform):
            self.then.execute(run, env, preds + self.varying)
        elif self.orelse is not None:
            self.orelse.execute(run, env, preds)


class _Bar:
    __slots__ = ("scope",)

    def __init__(self, scope):
        self.scope = scope

    def execute(self, run, env, preds):
        if run.san is not None:
            divergent = 0
            if preds:
                act = run.block_active(env, preds)
                divergent = int(act.size - int(act.sum()))
            run.san.barrier(self.scope, divergent)
        if run.prof is not None:
            run.prof.barrier(self.scope)
        run.machine.tma_drain(run.bid)


class _SpecNode:
    __slots__ = ("sp",)

    def __init__(self, sp):
        self.sp = sp

    def execute(self, run, env, preds):
        run.exec_spec(self.sp, env, preds)


# -- per-spec plans ------------------------------------------------------------
def _lane_groups(spec, nthreads: int) -> List[List[int]]:
    """Which lane sets execute this spec (mirrors the reference engine)."""
    group = spec.thread_group()
    if group is None or group.rank == 0:
        return [list(range(nthreads))]
    base = group.base
    base_value = base.evaluate({}) if base.free_vars() == frozenset() else None
    if base_value is None:
        raise SimulationError(
            f"thread group base of {spec!r} must be constant"
        )
    if group.is_tiled():
        inner = group.element.layout
        groups = []
        for g in range(group.layout.size()):
            start = base_value + group.layout(g)
            groups.append([start + inner(i) for i in range(inner.size())])
        return groups
    layout = group.layout
    return [[base_value + layout(i) for i in range(layout.size())]]


def _view_size(view) -> int:
    return view.layout.size() if view.rank else 1


class _MmaAux:
    """Precomputed fragment-to-matrix flat index maps for one mma spec.

    The fragment coordinate functions are pure, so the scatter/gather
    indices of every lane's registers are computed once here; execution
    is then three bulk scatters, one ``a @ b + c``, and one gather.
    """

    __slots__ = ("sem", "a_tiles", "b_tiles", "c_tiles", "a_idx", "b_idx",
                 "c_idx", "c_sizes")

    def __init__(self, spec, sem):
        self.sem = sem
        self.a_tiles = tile_views(spec.a)
        self.b_tiles = tile_views(spec.b)
        self.c_tiles = tile_views(spec.c)
        m, n, k = sem.shape

        def index_map(tiles, coord, ncols):
            width = sum(_view_size(v) for v in tiles)
            idx = np.empty((sem.group, width), dtype=np.int64)
            for li in range(sem.group):
                for r in range(width):
                    i, j = coord(li, r)
                    idx[li, r] = i * ncols + j
            return idx

        self.a_idx = index_map(self.a_tiles, sem.a_coord, k)
        self.b_idx = index_map(self.b_tiles, sem.b_coord, n)
        self.c_idx = index_map(self.c_tiles, sem.c_coord, n)
        self.c_sizes = [_view_size(v) for v in self.c_tiles]


class _LdmatrixAux:
    """Precomputed source-lane ordering and distribution indices."""

    __slots__ = ("sem", "num", "src_rows", "recv_idx", "dst_tiles")

    def __init__(self, spec, sem):
        self.sem = sem
        self.num = sem.num
        self.src_rows = np.asarray(
            [sem.source_lane(q, row)
             for q in range(sem.num) for row in range(8)],
            dtype=np.int64,
        )
        recv = np.empty((32, sem.num, 2), dtype=np.int64)
        for li in range(32):
            for q in range(sem.num):
                for j in (0, 1):
                    r, c = frag.ldmatrix_dst_coords(li, q, j)
                    if sem.trans:
                        r, c = c, r
                    recv[li, q, j] = q * 64 + r * 8 + c
        self.recv_idx = recv
        self.dst_tiles = tile_views(spec.dst)


class _SpecPlan:
    """One leaf spec, matched and bound to a vectorized runner."""

    __slots__ = ("spec", "atomic", "label", "groups", "runner", "aux",
                 "charge_cache")

    def __init__(self, spec, plan: "LaunchPlan"):
        atomic = match_atomic(spec, plan.arch.atomics)
        self.spec = spec
        self.atomic = atomic
        label = f"{spec.kind}:{atomic.name}"
        if spec.label:
            label += f"[{spec.label}]"
        self.label = label
        self.groups = [
            GroupPlan(lanes) for lanes in _lane_groups(spec, plan.nthreads)
        ]
        self.runner, self.aux = _select_runner(spec, atomic)
        #: (group, stream-identity) -> (counter delta, keepalive refs);
        #: see _Replay.exec_spec.
        self.charge_cache: dict = {}


# -- vectorized runners --------------------------------------------------------
def _run_move(run, sp, gp, env, preds):
    rows = run.active_rows(gp, env, preds)
    if rows.size == 0:
        return
    spec = sp.spec
    vals, read_ent = run.read_bulk(gp.view(spec.src), env, rows)
    write_ent = run.write_bulk(gp.view(spec.dst), env, rows, vals)
    run.emit(gp, rows, (read_ent, write_ent))


def _run_fma(run, sp, gp, env, preds):
    rows = run.active_rows(gp, env, preds)
    if rows.size == 0:
        return
    spec = sp.spec
    a, a_ent = run.read_bulk(gp.view(spec.a), env, rows)
    b, b_ent = run.read_bulk(gp.view(spec.b), env, rows)
    c, c_ent = run.read_bulk(gp.view(spec.c), env, rows)
    out = c.astype(np.float32) + a.astype(np.float32) * b.astype(np.float32)
    write_ent = run.write_bulk(gp.view(spec.c), env, rows, out)
    run.emit(gp, rows, (a_ent, b_ent, c_ent, write_ent))


def _run_unary(run, sp, gp, env, preds):
    rows = run.active_rows(gp, env, preds)
    if rows.size == 0:
        return
    spec = sp.spec
    x, x_ent = run.read_bulk(gp.view(spec.inputs[0]), env, rows)
    out = spec.op(x.astype(np.float32))
    write_ent = run.write_bulk(gp.view(spec.outputs[0]), env, rows, out)
    run.emit(gp, rows, (x_ent, write_ent))


def _run_binary(run, sp, gp, env, preds):
    rows = run.active_rows(gp, env, preds)
    if rows.size == 0:
        return
    spec = sp.spec
    x, x_ent = run.read_bulk(gp.view(spec.inputs[0]), env, rows)
    y, y_ent = run.read_bulk(gp.view(spec.inputs[1]), env, rows)
    out = spec.op(x.astype(np.float32), y.astype(np.float32))
    write_ent = run.write_bulk(gp.view(spec.outputs[0]), env, rows, out)
    run.emit(gp, rows, (x_ent, y_ent, write_ent))


def _run_reduction(run, sp, gp, env, preds):
    rows = run.active_rows(gp, env, preds)
    if rows.size == 0:
        return
    spec = sp.spec
    src = spec.inputs[0]
    shape = src.layout.shape
    dims = tuple(it.flatten(shape)) if shape != () else (1,)
    vals, read_ent = run.read_bulk(gp.view(src), env, rows)
    nrows = rows.size
    # Per-lane Fortran-order reshape with the lane axis appended last:
    # the spec's axis numbering is unchanged (negative axes resolved
    # against the laneless rank first), and the sequential fold below
    # applies the op in the reference engine's exact element order per
    # lane (ufunc reduce would round fp32 sums differently).
    grid = vals.astype(np.float32).T.reshape(dims + (nrows,), order="F")
    axes = tuple(a % len(dims) for a in spec.axes)
    rest = [s for i, s in enumerate(grid.shape) if i not in axes]
    flattened = np.moveaxis(grid, axes, tuple(range(len(axes)))).reshape(
        -1, *rest
    )
    out = None
    for slice_ in flattened:
        out = slice_ if out is None else spec.op(out, slice_)
    if out is None:
        out = grid
    per_lane = out.reshape(-1, nrows, order="F")
    write_ent = run.write_bulk(gp.view(spec.outputs[0]), env, rows,
                               per_lane.T)
    run.emit(gp, rows, (read_ent, write_ent))


def _run_init(run, sp, gp, env, preds):
    rows = run.active_rows(gp, env, preds)
    if rows.size == 0:
        return
    spec = sp.spec
    out_view = spec.outputs[0]
    size = _view_size(out_view)
    values = np.broadcast_to(np.full(size, spec.value), (rows.size, size))
    write_ent = run.write_bulk(gp.view(out_view), env, rows, values)
    run.emit(gp, rows, (write_ent,))


def _run_shfl(run, sp, gp, env, preds):
    # Warp collectives execute for every lane regardless of predicates,
    # matching the reference executor.
    spec = sp.spec
    rows = run.all_rows(gp)
    vals, read_ent = run.read_bulk(gp.view(spec.inputs[0]), env, rows)
    perm = rows ^ spec.xor_mask
    np.copyto(perm, rows, where=perm >= gp.nlanes)
    write_ent = run.write_bulk(gp.view(spec.outputs[0]), env, rows,
                               vals[perm])
    run.emit(gp, rows, (read_ent,))
    run.emit(gp, rows, (write_ent,))


def _run_mma(run, sp, gp, env, preds):
    aux = sp.aux
    sem = aux.sem
    if gp.nlanes != sem.group:
        raise ValueError(
            f"mma expects {sem.group} cooperating lanes, got {gp.nlanes}"
        )
    rows = run.all_rows(gp)
    read_entries = []

    def gather(tiles):
        parts = []
        for view in tiles:
            vals, ent = run.read_bulk(gp.view(view), env, rows)
            read_entries.append(ent)
            parts.append(vals)
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1)

    a_vals = gather(aux.a_tiles)
    b_vals = gather(aux.b_tiles)
    c_vals = gather(aux.c_tiles)
    m, n, k = sem.shape
    a = np.zeros(m * k, dtype=np.float32)
    b = np.zeros(k * n, dtype=np.float32)
    c = np.zeros(m * n, dtype=np.float32)
    a[aux.a_idx] = a_vals
    b[aux.b_idx] = b_vals
    c[aux.c_idx] = c_vals
    d = a.reshape(m, k) @ b.reshape(k, n) + c.reshape(m, n)
    d_vals = d.reshape(-1)[aux.c_idx]
    write_entries = []
    pos = 0
    for view, size in zip(aux.c_tiles, aux.c_sizes):
        write_entries.append(
            run.write_bulk(gp.view(view), env, rows,
                           d_vals[:, pos:pos + size])
        )
        pos += size
    run.emit(gp, rows, read_entries)
    run.emit(gp, rows, write_entries)


def _run_ldmatrix(run, sp, gp, env, preds):
    aux = sp.aux
    spec = sp.spec
    if gp.nlanes != 32:
        raise ValueError("ldmatrix requires a full 32-lane warp")
    # Gather only the address-supplying lanes, in (matrix, row) order —
    # the reference read order, which the sanitizer feed must follow.
    vals, read_ent = run.read_bulk(gp.view(spec.src), env, aux.src_rows)
    run.emit_entry_order(gp, read_ent)
    matrices = vals.reshape(aux.num * 8, 8)
    if len(aux.dst_tiles) != aux.num:
        raise ValueError(
            f"ldmatrix.x{aux.num} destination must have "
            f"{aux.num} tiles, got {len(aux.dst_tiles)}"
        )
    received = matrices.reshape(-1)[aux.recv_idx]
    rows = run.all_rows(gp)
    write_entries = []
    for q, tile in enumerate(aux.dst_tiles):
        write_entries.append(
            run.write_bulk(gp.view(tile), env, rows, received[:, q, :])
        )
    run.emit(gp, rows, write_entries)


#: Scalar executor -> vectorized runner, built lazily because
#: :mod:`repro.arch.instructions` itself imports :mod:`repro.sim` (this
#: package) for :class:`ExecCtx` and is mid-initialization when this
#: module first loads.
_VEC_RUNNERS: Optional[dict] = None
_MMA_SEMANTICS: Optional[dict] = None


def _runner_tables():
    global _VEC_RUNNERS, _MMA_SEMANTICS
    if _VEC_RUNNERS is None:
        from ..arch import instructions as X

        _VEC_RUNNERS = {
            X.exec_thread_move: _run_move,
            X.exec_thread_matmul: _run_fma,
            X.exec_thread_unary: _run_unary,
            X.exec_thread_binary: _run_binary,
            X.exec_thread_reduction: _run_reduction,
            X.exec_thread_init: _run_init,
            X.exec_shfl_bfly: _run_shfl,
        }
        _MMA_SEMANTICS = {
            X.exec_mma_16816:
                "mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32",
            X.exec_mma_884:
                "mma.sync.aligned.m8n8k4.row.col.f32.f16.f16.f32",
        }
    return _VEC_RUNNERS, _MMA_SEMANTICS


def _select_runner(spec, atomic):
    """Pick the vectorized runner for an atomic, or None for fallback."""
    execute = atomic.execute
    if execute is None:
        return None, None
    runners, mma_semantics = _runner_tables()
    if execute in mma_semantics:
        return _run_mma, _MmaAux(spec, ptx.semantics_for(
            mma_semantics[execute]))
    runner = runners.get(execute)
    if runner is _run_move and (spec.src.buffer == spec.dst.buffer
                                and spec.src.mem == spec.dst.mem):
        # Source and destination may alias across lanes; the scalar
        # per-lane read/write interleaving is the defined order.
        return None, None
    if runner is not None:
        return runner, None
    instruction = atomic.instruction or ""
    if instruction.startswith("ldmatrix.sync.aligned.m8n8"):
        return _run_ldmatrix, _LdmatrixAux(
            spec, ptx.semantics_for(instruction))
    return None, None


# -- replay engine -------------------------------------------------------------
def _charge_key(gi, pending):
    """Identity key for one group execution's queued observer stream.

    The profiler counter delta of an execution is a pure function of
    its record stream, which is in turn fully determined by the
    immutable *source* offset/mask arrays (the ViewPlan cache entries
    the runner selected from — row selection is deterministic given
    the row set's content) and the row sets themselves.  Source arrays
    are keyed by id() — sound only because the cache entry keeps them
    alive (:func:`_charge_refs`), so a matching id always names the
    same object.  Row sets are tiny and keyed by content, making the
    key stable across blocks and loop iterations.
    """
    parts = [gi]
    for entry_order, master_rows, entries in pending:
        parts.append(entry_order)
        parts.append(None if master_rows is None else master_rows.tobytes())
        for entry in entries:
            if entry is None:
                # A fully-guarded-out write: contributes no records,
                # so it cannot change the delta regardless of source.
                parts.append(None)
                continue
            tensor, kind, _offs_sel, _mask_sel, rows, offs, mask = entry
            parts.append((id(tensor), kind, id(offs),
                          0 if mask is None else id(mask),
                          rows.tobytes()))
    return tuple(parts)


def _charge_refs(pending):
    """Strong refs to every id()-keyed array of a cached charge key."""
    refs = []
    for _order, _rows, entries in pending:
        for entry in entries:
            if entry is not None:
                refs.append((entry[5], entry[6]))
    return refs


class _Replay:
    """Mutable per-block state while replaying one compiled plan."""

    __slots__ = ("plan", "machine", "san", "prof", "bid", "regfile",
                 "all_lanes", "_aranges", "_pending", "_trace")

    def __init__(self, plan, machine, san, prof, bid):
        self.plan = plan
        self.machine = machine
        self.san = san
        self.prof = prof
        self.bid = bid
        self.regfile = _RegFile(machine, bid, plan.nthreads)
        self.all_lanes = np.arange(plan.nthreads, dtype=np.int64)
        self._aranges: Dict[int, np.ndarray] = {}
        self._pending: Optional[list] = None
        #: Optional trace recorder (:mod:`repro.sim.trace`) capturing
        #: resolved leaf executions during an observers-off replay.
        self._trace = None

    # -- predicates ------------------------------------------------------------
    def all_rows(self, gp) -> np.ndarray:
        """The identity row set ``0..nlanes-1`` (cached, read-only).

        ``read_bulk``/``write_bulk`` recognise these exact objects and
        skip the row-gather; callers with permuted or filtered row sets
        (ldmatrix sources, predicated lanes) build their own arrays and
        take the general path.
        """
        arr = self._aranges.get(gp.nlanes)
        if arr is None:
            arr = np.arange(gp.nlanes)
            arr.setflags(write=False)
            self._aranges[gp.nlanes] = arr
        return arr

    def _active(self, lane_arr, env, preds):
        lenv = dict(env)
        lenv["threadIdx.x"] = lane_arr
        act = None
        for lhs, rhs in preds:
            ok = np.asarray(lhs(lenv) < rhs(lenv))
            if ok.ndim == 0:
                ok = np.broadcast_to(ok, lane_arr.shape)
            act = ok if act is None else (act & ok)
        return act

    def active_rows(self, gp, env, preds):
        if not preds:
            rows = self.all_rows(gp)
        else:
            rows = np.flatnonzero(self._active(gp.lane_arr, env, preds))
        if self._trace is not None:
            self._trace.on_rows(rows)
        return rows

    def block_active(self, env, preds):
        return self._active(self.all_lanes, env, preds)

    # -- spec dispatch ---------------------------------------------------------
    def exec_spec(self, sp, env, preds):
        atomic = sp.atomic
        if atomic.execute is None:
            raise SimulationError(
                f"atomic spec {atomic.name} has no simulator semantics"
            )
        san, prof = self.san, self.prof
        if san is not None:
            san.enter_spec(sp.label)
        if san is None and prof is None:
            trace = self._trace
            if trace is None:
                for gp in sp.groups:
                    self._exec_group(sp, gp, env, preds)
                return
            for gp in sp.groups:
                trace.begin_leaf(sp, gp)
                self._exec_group(sp, gp, env, preds)
            return
        for gi, gp in enumerate(sp.groups):
            if sp.runner is None:
                # Scalar fallback: ExecCtx feeds the observers itself.
                if prof is not None:
                    prof.begin_exec(sp.label, atomic.name, atomic.width,
                                    gp.lanes)
                    try:
                        self._exec_group(sp, gp, env, preds)
                    finally:
                        prof.end_exec()
                else:
                    self._exec_group(sp, gp, env, preds)
                continue
            pending = self._pending = []
            sp.runner(self, sp, gp, env, preds)
            self._pending = None
            if prof is None:
                self._feed(gp, pending, san, None)
                continue
            # The profiler effect of one execution is a pure function
            # of its record stream; with no sanitizer attached, replay
            # a previously captured counter delta instead of walking
            # the per-lane records again.
            key = None if san is not None else _charge_key(gi, pending)
            if key is not None:
                hit = sp.charge_cache.get(key)
                if hit is not None:
                    prof.apply_exec(sp.label, atomic.name, atomic.width,
                                    hit[0])
                    continue
            prof.begin_exec(sp.label, atomic.name, atomic.width, gp.lanes)
            before = prof.exec_snapshot(sp.label)
            try:
                self._feed(gp, pending, san, prof)
            finally:
                prof.end_exec()
            if key is not None:
                if len(sp.charge_cache) >= CHARGE_CACHE_ENTRIES:
                    sp.charge_cache.clear()
                sp.charge_cache[key] = (
                    prof.exec_delta(sp.label, before),
                    _charge_refs(pending),
                )

    def _exec_group(self, sp, gp, env, preds):
        if sp.runner is None:
            self.regfile.flush()
            ctx = ExecCtx(self.machine, self.bid, env, gp.lanes, preds)
            sp.atomic.execute(sp.spec, ctx)
            self.regfile.reload()
            return
        sp.runner(self, sp, gp, env, preds)

    # -- bulk element transfer -------------------------------------------------
    def read_bulk(self, vp, env, rows, fill=0):
        """Gather ``rows`` lanes' view elements; returns (values, entry).

        The returned emission entry carries the raw offsets/mask for
        the observer feed; buffer growth, zero-substitution of masked
        offsets, fill values and the bank-model feed all match the
        reference ``ExecCtx.read`` exactly.
        """
        offs, mask = vp.offsets_mask(env)
        take_all = rows is self._aranges.get(offs.shape[0])
        offs_sel = offs if take_all else offs[rows]
        if mask is None:
            mask_sel = None
            offs_eff = offs_sel
        else:
            mask_sel = mask if take_all else mask[rows]
            offs_eff = np.where(mask_sel, offs_sel, 0)
        if vp.is_rf:
            lane_ids = vp.lane_arr if take_all else vp.lane_arr[rows]
            per_row_min = offs_eff.max(axis=1) + 1
            buf = self.regfile.require(vp.tensor.buffer, vp.tensor.dtype,
                                       lane_ids, per_row_min)
            values = buf[lane_ids[:, None], offs_eff]
        else:
            buf = self.machine.buffer(
                vp.tensor.mem, vp.tensor.buffer, vp.tensor.dtype,
                self.bid, 0, int(offs_eff.max()) + 1,
            )
            values = buf[offs_eff]
            if vp.is_sh:
                self.machine.bank_model.record_batch(offs_eff * vp.itemsize)
        if mask_sel is not None:
            values = np.where(mask_sel, values, fill).astype(buf.dtype)
        if self._trace is not None:
            self._trace.on_read(vp, offs_eff, mask_sel,
                                lane_ids if vp.is_rf else None, fill)
        return values, (vp.tensor, "read", offs_sel, mask_sel, rows,
                        offs, mask)

    def write_bulk(self, vp, env, rows, values):
        """Scatter ``values`` to ``rows`` lanes' view elements.

        Fully-guarded-out lanes are dropped before any buffer or bank
        effect (the reference engine's early return); scatter order is
        lane-major so last-wins overlaps resolve as the per-lane loop
        would.  Returns the emission entry, or None if nothing wrote.
        """
        offs, mask = vp.offsets_mask(env)
        take_all = rows is self._aranges.get(offs.shape[0])
        offs_sel = offs if take_all else offs[rows]
        if vp.tensor.dtype.quantize is not None:
            values = vp.tensor.dtype.quantize(
                np.asarray(values, dtype=np.float32))
        values = np.asarray(values)
        tensor = vp.tensor
        if mask is None:
            if vp.is_rf:
                lane_ids = vp.lane_arr if take_all else vp.lane_arr[rows]
                per_row_min = offs_sel.max(axis=1) + 1
                buf = self.regfile.require(tensor.buffer, tensor.dtype,
                                           lane_ids, per_row_min)
                buf[lane_ids[:, None], offs_sel] = \
                    values.astype(buf.dtype, copy=False)
            else:
                lane_ids = None
                buf = self.machine.buffer(
                    tensor.mem, tensor.buffer, tensor.dtype, self.bid, 0,
                    int(offs_sel.max()) + 1,
                )
                buf[offs_sel] = values.astype(buf.dtype, copy=False)
                if vp.is_sh:
                    self.machine.bank_model.record_batch(
                        offs_sel * vp.itemsize)
            if self._trace is not None:
                self._trace.on_write_plain(vp, offs_sel, lane_ids)
            return (tensor, "write", offs_sel, None, rows, offs, mask)
        mask_sel = mask if take_all else mask[rows]
        keep = mask_sel.any(axis=1)
        if not keep.any():
            if self._trace is not None:
                self._trace.on_write_skip()
            return None
        if not keep.all():
            rows = rows[keep]
            offs_sel = offs_sel[keep]
            mask_sel = mask_sel[keep]
            values = np.broadcast_to(values, keep.shape + values.shape[1:])
            values = values[keep]
        flat_offs = offs_sel[mask_sel]
        flat_vals = np.broadcast_to(values, offs_sel.shape)[mask_sel]
        if vp.is_rf:
            lane_ids = vp.lane_arr[rows]
            live_max = np.where(mask_sel, offs_sel,
                                np.iinfo(np.int64).min)
            per_row_min = live_max.max(axis=1) + 1
            buf = self.regfile.require(tensor.buffer, tensor.dtype,
                                       lane_ids, per_row_min)
            lane_mat = np.broadcast_to(lane_ids[:, None],
                                       offs_sel.shape)[mask_sel]
            buf[lane_mat, flat_offs] = flat_vals
        else:
            lane_mat = None
            buf = self.machine.buffer(
                tensor.mem, tensor.buffer, tensor.dtype, self.bid, 0,
                int(flat_offs.max()) + 1,
            )
            buf[flat_offs] = flat_vals
            if vp.is_sh:
                self.machine.bank_model.record_batch(offs_sel * vp.itemsize)
        if self._trace is not None:
            self._trace.on_write_masked(vp, offs_sel, mask_sel, keep,
                                        flat_offs, lane_mat)
        return (tensor, "write", offs_sel, mask_sel, rows, offs, mask)

    # -- observer feed ---------------------------------------------------------
    def emit(self, gp, master_rows, entries):
        """Queue records for the observer feed, lanes-outer entries-inner.

        Emission is deferred: runners queue their entries and
        exec_spec replays them (or a cached charge delta) once the
        numerics complete.  Relative order is preserved exactly.
        """
        if self._pending is not None:
            self._pending.append((False, master_rows, entries))

    def emit_entry_order(self, gp, entry):
        """Queue one entry in its own row order (ldmatrix reads)."""
        if self._pending is not None:
            self._pending.append((True, None, (entry,)))

    def _feed(self, gp, pending, san, prof):
        """Replay queued emissions into the observers.

        Per queued item the order is lanes-outer entries-inner (reads
        and writes of one lane before the next lane) — exactly the
        reference engine's per-lane record order, which the
        order-sensitive sanitizer hazard classification requires.
        """
        lanes = gp.lanes
        bid = self.bid
        # Append record-shaped tuples straight into the profiler's sink
        # (shared-memory wavefront packing is order-sensitive, so the
        # interleaving below must not change).
        records = prof.exec_records() if prof is not None else None
        for entry_order, master_rows, entries in pending:
            if entry_order:
                entry = entries[0]
                if entry is None:
                    continue
                tensor, kind, offs_sel, mask_sel, rows = entry[:5]
                mem, buffer = tensor.mem, tensor.buffer
                nbytes = tensor.dtype.bytes
                for i, r in enumerate(rows):
                    lane = lanes[int(r)]
                    row = offs_sel[i]
                    live = row if mask_sel is None else row[mask_sel[i]]
                    if live.size == 0:
                        continue
                    if san is not None:
                        san.record(tensor, bid, lane, live.tolist(), kind)
                    if records is not None:
                        records.append(
                            (mem, buffer, nbytes, kind, lane, live))
                continue
            prepared = []
            for entry in entries:
                if entry is None:
                    continue
                tensor, kind, offs_sel, mask_sel, rows = entry[:5]
                # Entries that kept the master row set align by
                # position; filtered writes need the value -> position
                # map.
                rowmap = None if rows is master_rows else {
                    int(r): i for i, r in enumerate(rows)
                }
                prepared.append((tensor, kind, offs_sel, mask_sel, rowmap,
                                 tensor.mem, tensor.buffer,
                                 tensor.dtype.bytes))
            if not prepared:
                continue
            for pos, r in enumerate(master_rows):
                lane = lanes[int(r)]
                for (tensor, kind, offs_sel, mask_sel, rowmap,
                     mem, buffer, nbytes) in prepared:
                    if rowmap is None:
                        i = pos
                    else:
                        i = rowmap.get(int(r))
                        if i is None:
                            continue
                    row = offs_sel[i]
                    live = row if mask_sel is None else row[mask_sel[i]]
                    if live.size == 0:
                        continue
                    if san is not None:
                        san.record(tensor, bid, lane, live.tolist(), kind)
                    if records is not None:
                        records.append(
                            (mem, buffer, nbytes, kind, lane, live))


# -- kernel identity -----------------------------------------------------------
#: id(kernel) -> (kernel, fingerprint).  The strong kernel reference
#: keeps the id from being recycled while its fingerprint is cached.
_FINGERPRINTS: Dict[int, Tuple[object, str]] = {}
_FINGERPRINT_CACHE_ENTRIES = 256


def _canonical_view(tensor):
    """Replace an elementwise-spec operand view by its F2 canonical form.

    A Move/Init executes its operand views purely through their colex
    offset *sequences*: two spellings with the same physical offset map
    (nested vs flat modes, coalesced runs, swizzles folded into the
    layout) behave identically in every observable way — numerics,
    profiler segments, sanitizer records.  For such views the layout/
    swizzle spelling is erased into the F2 bit matrix so equivalent
    spellings fingerprint (and therefore plan-cache and graph-cache)
    identically.  Guarded, tiled, or non-power-of-two views are left
    untouched: their semantics depend on more than the sequence.
    """
    if not isinstance(tensor, Tensor) or isinstance(tensor.element, Tile):
        return tensor
    guards = tensor.guards
    if guards is not None and any(g is not None for g in guards):
        return tensor
    try:
        lin = to_linear(tensor.layout, tensor.swizzle).canonical()
    except LinearLayoutError:
        return tensor
    # Intern the strings like PickleBySlots.__getstate__ does: the
    # token must memo-share its names with the rest of the dump, or
    # the fingerprint would depend on which equal string object the
    # process happened to intern first.
    return ("__f2view__", sys.intern(tensor.name), tensor.element,
            tensor.mem, sys.intern(tensor.buffer), tensor.offset,
            lin.in_bits, lin.cols)


class _CanonicalPickler(pickle.Pickler):
    """Fingerprint pickler: canonicalizes elementwise operand spellings.

    Move/Init operand views and Allocate declarations are erased to
    their F2 form: a Move/Init is observable only through its offset
    sequences, and an Allocate only through its buffer's extent
    (the cosize, identical for F2-equal maps), memspace and dtype.
    """

    def reducer_override(self, obj):
        if isinstance(obj, (Move, Init, Allocate)):
            state = obj.__getstate__()
            for key in ("inputs", "outputs"):
                views = state.get(key)
                if views:
                    state[key] = tuple(_canonical_view(t) for t in views)
            payload = (type(obj).__name__, tuple(
                sorted(state.items(), key=lambda kv: kv[0])))
            return (tuple, (payload,))
        return NotImplemented


def kernel_fingerprint(kernel) -> str:
    """Deterministic structural identity of a kernel.

    The sha256 of the kernel's canonical pickle serialization: two
    structurally identical kernels (same specs, layouts, launch shape,
    symbols) get the same fingerprint even when they are distinct
    objects, and the fingerprint survives process boundaries — unlike
    ``id()``, it is a valid persistent cache key.  Elementwise-spec
    operand views are canonicalized to their F2 form first (see
    :func:`_canonical_view`), so kernels that differ only in how a
    Move/Init view's layout is spelled share a fingerprint — and with
    it a compiled plan and a captured graph.
    """
    cached = _FINGERPRINTS.get(id(kernel))
    if cached is not None and cached[0] is kernel:
        return cached[1]
    buffer = io.BytesIO()
    _CanonicalPickler(buffer, protocol=4).dump(kernel)
    digest = hashlib.sha256(buffer.getvalue()).hexdigest()
    if len(_FINGERPRINTS) >= _FINGERPRINT_CACHE_ENTRIES:
        _FINGERPRINTS.clear()
    _FINGERPRINTS[id(kernel)] = (kernel, digest)
    return digest


class CacheStats:
    """Hit/miss/eviction counters shared by the plan and graph caches."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self):
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"evictions={self.evictions})")


# -- the launch plan and its cache ---------------------------------------------
class LaunchPlan:
    """A kernel's decomposition tree compiled for vectorized replay."""

    __slots__ = ("kernel", "arch", "nthreads", "grid_size", "root")

    def __init__(self, kernel, arch):
        self.kernel = kernel  # strong ref: cache keys use id(kernel)
        self.arch = arch
        self.nthreads = kernel.block_size()
        self.grid_size = kernel.grid_size()
        self.root = self._compile_block(kernel.body)

    def __reduce__(self):
        # The compiled node tree holds closures (compile_expr) that
        # cannot pickle; the kernel and arch can, and compilation is
        # deterministic — so a plan serializes as its inputs and
        # recompiles on load.
        return (LaunchPlan, (self.kernel, self.arch))

    # -- compilation -----------------------------------------------------------
    def _compile_block(self, stmts) -> _Seq:
        items = []
        for stmt in stmts:
            node = self._compile_stmt(stmt)
            if node is not None:
                items.append(node)
        return _Seq(items)

    def _compile_stmt(self, stmt):
        if isinstance(stmt, Block):
            return self._compile_block(stmt)
        if isinstance(stmt, ForLoop):
            return _Loop(
                compile_expr(stmt.start), compile_expr(stmt.stop),
                compile_expr(stmt.step), stmt.var.name,
                self._compile_block(stmt.body),
            )
        if isinstance(stmt, If):
            uniform, varying = [], []
            for a, b in stmt.predicates:
                pair = (compile_expr(a), compile_expr(b))
                if "threadIdx.x" in (a.free_vars() | b.free_vars()):
                    varying.append(pair)
                else:
                    uniform.append(pair)
            orelse = (self._compile_block(stmt.orelse)
                      if stmt.orelse is not None else None)
            return _If(uniform, varying, self._compile_block(stmt.then),
                       orelse)
        if isinstance(stmt, Barrier):
            return _Bar(stmt.scope)
        if isinstance(stmt, Comment):
            return None
        if isinstance(stmt, SpecStmt):
            return self._compile_spec(stmt.spec)
        raise SimulationError(f"cannot execute statement {stmt!r}")

    def _compile_spec(self, spec):
        if isinstance(spec, Allocate):
            return None  # handled during launch
        if spec.body is not None:
            return self._compile_block(spec.body)
        return _SpecNode(_SpecPlan(spec, self))

    # -- replay ----------------------------------------------------------------
    def replay(self, machine, symbols, sanitizer, profiler,
               blocks: Optional[Sequence[int]] = None) -> None:
        """Run the plan over the grid (or a subset of its blocks).

        ``blocks`` selects which block ids to execute; blocks are
        independent, so a caller may shard the grid across machines
        sharing the same global arrays.  Observers (sanitizer/profiler)
        are order-sensitive and only valid for a full in-order replay.
        """
        for bid in (range(self.grid_size) if blocks is None else blocks):
            if sanitizer is not None:
                sanitizer.begin_block(bid)
            if profiler is not None:
                profiler.begin_block(bid)
            env = dict(symbols)
            env["blockIdx.x"] = bid
            run = _Replay(self, machine, sanitizer, profiler, bid)
            self.root.execute(run, env, ())
            run.regfile.flush()
            machine.tma_check_drained(bid)


def plan_cache_key(kernel, arch, symbols: dict, bindings: dict) -> tuple:
    """The deterministic cache key for one (kernel, launch) pairing.

    Built from the kernel's structural fingerprint rather than its
    ``id()``, so two structurally identical kernels share one compiled
    plan and the key is stable across processes (it contains only
    strings, names and shape tuples — it pickles as-is).
    """
    return (
        kernel_fingerprint(kernel),
        arch.name,
        tuple(sorted(symbols.items())),
        tuple(sorted(
            (name, tuple(np.shape(array)))
            for name, array in bindings.items()
        )),
    )


class PlanCache:
    """Thread-safe LRU cache of compiled launch plans.

    Keys combine the kernel's structural fingerprint, the architecture,
    symbol bindings, and the shapes of the bound parameter arrays —
    re-running an equivalent kernel with the same bindings is a hit;
    changing symbol values or a binding's shape recompiles.  Counters
    live in :class:`CacheStats` (``stats``), with ``hits`` / ``misses``
    / ``evictions`` mirrored as properties.
    """

    def __init__(self, maxsize: int = 8):
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, LaunchPlan]" = OrderedDict()

    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    @property
    def evictions(self) -> int:
        return self.stats.evictions

    def lookup(self, kernel, arch, symbols: dict, bindings: dict) -> LaunchPlan:
        key = plan_cache_key(kernel, arch, symbols, bindings)
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return plan
            self.stats.misses += 1
        # Compile outside the lock: plans for distinct kernels build
        # concurrently.  Two threads racing on the same key both build
        # an identical plan and the second insert wins — value-equal,
        # so the race is benign.
        plan = LaunchPlan(kernel, arch)
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return plan

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


__all__ = [
    "CacheStats", "LaunchPlan", "PlanCache", "ViewPlan",
    "VIEW_CACHE_ENTRIES", "kernel_fingerprint", "plan_cache_key",
]
