"""Instruction-level profiler for the functional simulator.

The paper validates every optimization with Nsight Compute counters
(Figures 9-15 report measured global/shared transactions, bank
conflicts, and mma issue counts).  The simulator substitutes for the
GPU; this module substitutes for the *profiler*: an opt-in observer that
rides the same :class:`~repro.sim.context.ExecCtx` read/write funnel the
sanitizer uses and reconstructs, per executed atomic spec, the counters
Nsight would report.

Counter semantics (documented so calibration tolerances mean something):

* **Global transactions** — per warp-level instruction, each lane's
  element offsets are split into contiguous *vector segments* of at most
  16 bytes (the widest 128-bit load/store).  Segment *i* across all
  lanes of a warp forms one issued instruction; its transaction count is
  the number of distinct 32-byte sectors the segments touch.  Perfectly
  coalesced fp32 warp loads therefore cost 4 transactions per 128 bytes,
  and a fully strided access costs one sector per lane — the same
  coalescing-window accounting Nsight's ``gld_transactions`` uses.
* **Shared transactions / bank conflicts** — segments bound for shared
  memory are packed, in arrival order, into *wavefronts* of at most 128
  bytes (32 banks x 4 bytes, one shared-memory cycle).  A wavefront's
  transaction count is the maximum number of distinct 4-byte words
  mapped to any single bank; ``transactions - 1`` of those are bank
  conflicts.  Arrival order matters and is preserved: ``ldmatrix.x4``
  reads its four 8x8 matrices phase by phase, so each 8-lane phase is
  its own wavefront exactly as on hardware.
* **Issue counts** — collective atomics (``width > 1``: mma, ldmatrix,
  shfl) issue once per executed lane group; per-thread atomics issue
  once per *active* (unpredicated) lane.
* **Occupancy** — active lanes / lane slots per spec, i.e. the fraction
  of predicated-off work (remainder guards show up here).
* **Timeline** — every execution advances a per-block clock by the
  transactions it incurred; the trace exports as Chrome ``trace_event``
  JSON (one track per thread-block, load it at ``chrome://tracing`` or
  https://ui.perfetto.dev).

This subsumes the static helpers in :mod:`repro.sim.banks`: those
analyse one hypothetical access pattern; the profiler measures every
access the kernel actually performed.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tensor.memspace import GL, SH
from .machine import SMEM_BANK_BYTES, SMEM_BANKS

#: One global-memory transaction moves a 32-byte sector (L1/L2 sector size).
GLOBAL_SECTOR_BYTES = 32
#: Widest vectorized access a single lane can issue (128-bit ld/st).
MAX_VECTOR_BYTES = 16
#: One shared-memory wavefront services 32 banks x 4 bytes.
SMEM_WAVEFRONT_BYTES = SMEM_BANKS * SMEM_BANK_BYTES
#: Lanes per warp (warp-level instruction granularity).
WARP_SIZE = 32


def split_segments(offsets: Sequence[int], itemsize: int) -> List[List[int]]:
    """Split one lane's element offsets into vectorizable segments.

    A segment is a run of consecutive element offsets no wider than
    :data:`MAX_VECTOR_BYTES`; each segment is one load/store the lane
    issues, so a strided access degenerates into per-element segments.
    """
    segments: List[List[int]] = []
    max_elems = max(1, MAX_VECTOR_BYTES // itemsize)
    for off in offsets:
        if (segments and off == segments[-1][-1] + 1
                and len(segments[-1]) < max_elems):
            segments[-1].append(off)
        else:
            segments.append([off])
    return segments


def _segment_runs(offsets, itemsize: int) -> List[Tuple[int, int]]:
    """:func:`split_segments`, compactly: ``(first_offset, length)`` runs.

    Segments are runs of *consecutive* offsets, so only the first offset
    and the element count are needed for sector/bank accounting.  The
    greedy cap at :data:`MAX_VECTOR_BYTES` matches ``split_segments``
    exactly.
    """
    max_elems = max(1, MAX_VECTOR_BYTES // itemsize)
    arr = np.asarray(offsets)
    n = arr.shape[0]
    if n == 1:
        return [(int(arr[0]), 1)]
    breaks = np.flatnonzero(arr[1:] != arr[:-1] + 1) + 1
    out: List[Tuple[int, int]] = []
    prev = 0
    for b in (*breaks.tolist(), n):
        run = b - prev
        start = int(arr[prev])
        while run > max_elems:
            out.append((start, max_elems))
            start += max_elems
            run -= max_elems
        out.append((start, run))
        prev = b
    return out


class SpecCounters:
    """Aggregated counters for one atomic spec (one table row per label)."""

    __slots__ = (
        "label", "instruction", "width", "executions", "issues",
        "global_load_transactions", "global_store_transactions",
        "global_load_bytes", "global_store_bytes",
        "shared_load_transactions", "shared_store_transactions",
        "shared_load_bytes", "shared_store_bytes",
        "shared_load_wavefronts", "shared_store_wavefronts",
        "shared_load_bank_conflicts", "shared_store_bank_conflicts",
        "bulk_load_transactions", "bulk_store_transactions",
        "bulk_load_bytes", "bulk_store_bytes",
        "active_lanes", "lane_slots",
    )

    #: Mutable counter fields, in declaration order — the shape of the
    #: delta vectors exchanged by exec_snapshot/exec_delta/apply_exec.
    COUNTER_FIELDS = __slots__[3:]

    def __init__(self, label: str, instruction: str, width: int):
        self.label = label
        self.instruction = instruction
        self.width = width
        self.executions = 0
        self.issues = 0
        self.global_load_transactions = 0
        self.global_store_transactions = 0
        self.global_load_bytes = 0
        self.global_store_bytes = 0
        self.shared_load_transactions = 0
        self.shared_store_transactions = 0
        self.shared_load_bytes = 0
        self.shared_store_bytes = 0
        self.shared_load_wavefronts = 0
        self.shared_store_wavefronts = 0
        self.shared_load_bank_conflicts = 0
        self.shared_store_bank_conflicts = 0
        self.bulk_load_transactions = 0
        self.bulk_store_transactions = 0
        self.bulk_load_bytes = 0
        self.bulk_store_bytes = 0
        self.active_lanes = 0
        self.lane_slots = 0

    # -- derived ------------------------------------------------------------
    @property
    def global_transactions(self) -> int:
        return self.global_load_transactions + self.global_store_transactions

    @property
    def global_bytes(self) -> int:
        return self.global_load_bytes + self.global_store_bytes

    @property
    def shared_transactions(self) -> int:
        return self.shared_load_transactions + self.shared_store_transactions

    @property
    def shared_bytes(self) -> int:
        return self.shared_load_bytes + self.shared_store_bytes

    @property
    def shared_wavefronts(self) -> int:
        return self.shared_load_wavefronts + self.shared_store_wavefronts

    @property
    def bank_conflicts(self) -> int:
        return (self.shared_load_bank_conflicts
                + self.shared_store_bank_conflicts)

    @property
    def bulk_transactions(self) -> int:
        return self.bulk_load_transactions + self.bulk_store_transactions

    @property
    def bulk_bytes(self) -> int:
        return self.bulk_load_bytes + self.bulk_store_bytes

    @property
    def conflict_degree(self) -> float:
        """Average shared transactions per wavefront (1.0 = conflict-free)."""
        if self.shared_wavefronts == 0:
            return 1.0
        return self.shared_transactions / self.shared_wavefronts

    @property
    def occupancy(self) -> float:
        """Fraction of lane slots that executed unpredicated."""
        if self.lane_slots == 0:
            return 1.0
        return self.active_lanes / self.lane_slots

    def as_dict(self) -> dict:
        d = {name: getattr(self, name) for name in self.__slots__}
        d["global_transactions"] = self.global_transactions
        d["shared_transactions"] = self.shared_transactions
        d["bulk_transactions"] = self.bulk_transactions
        d["bank_conflicts"] = self.bank_conflicts
        d["conflict_degree"] = round(self.conflict_degree, 4)
        d["occupancy"] = round(self.occupancy, 4)
        return d

    def __repr__(self):
        return (f"SpecCounters({self.label!r}, issues={self.issues}, "
                f"gl={self.global_transactions}, sh={self.shared_transactions}, "
                f"conflicts={self.bank_conflicts})")


EXEC_DELTA_FIELDS = SpecCounters.COUNTER_FIELDS
#: Indices of the four transaction counters inside a delta vector —
#: their sum is what _account returned, i.e. the event duration.
_EXEC_DELTA_TX = tuple(
    EXEC_DELTA_FIELDS.index(f) for f in (
        "global_load_transactions", "global_store_transactions",
        "shared_load_transactions", "shared_store_transactions",
        "bulk_load_transactions", "bulk_store_transactions",
    )
)


class KernelProfile:
    """The profiler's report for one simulated launch."""

    def __init__(self, kernel_name: str, grid_size: int, block_size: int):
        self.kernel_name = kernel_name
        self.grid_size = grid_size
        self.block_size = block_size
        #: label -> :class:`SpecCounters`, aggregated over all blocks.
        self.specs: Dict[str, SpecCounters] = {}
        self.barriers: Dict[str, int] = {"block": 0, "warp": 0}
        #: Timeline events ``(block, label, start, duration, merged)``.
        self.events: List[Tuple[int, str, int, int, int]] = []
        self.dropped_events = 0

    # -- kernel-level totals ------------------------------------------------
    def _total(self, attr: str) -> int:
        return sum(getattr(c, attr) for c in self.specs.values())

    @property
    def global_load_transactions(self) -> int:
        return self._total("global_load_transactions")

    @property
    def global_store_transactions(self) -> int:
        return self._total("global_store_transactions")

    @property
    def global_transactions(self) -> int:
        return self._total("global_transactions")

    @property
    def global_load_bytes(self) -> int:
        return self._total("global_load_bytes")

    @property
    def global_store_bytes(self) -> int:
        return self._total("global_store_bytes")

    @property
    def global_bytes(self) -> int:
        return self._total("global_bytes")

    @property
    def shared_transactions(self) -> int:
        return self._total("shared_transactions")

    @property
    def shared_bytes(self) -> int:
        return self._total("shared_bytes")

    @property
    def shared_wavefronts(self) -> int:
        return self._total("shared_wavefronts")

    @property
    def bank_conflicts(self) -> int:
        return self._total("bank_conflicts")

    @property
    def bulk_transactions(self) -> int:
        return self._total("bulk_transactions")

    @property
    def bulk_load_bytes(self) -> int:
        return self._total("bulk_load_bytes")

    @property
    def bulk_store_bytes(self) -> int:
        return self._total("bulk_store_bytes")

    @property
    def bulk_bytes(self) -> int:
        return self._total("bulk_bytes")

    @property
    def barrier_count(self) -> int:
        return sum(self.barriers.values())

    @property
    def occupancy(self) -> float:
        slots = self._total("lane_slots")
        if slots == 0:
            return 1.0
        return self._total("active_lanes") / slots

    def issues(self, instruction_prefix: str) -> int:
        """Total issue count of atomics whose instruction name matches."""
        return sum(
            c.issues for c in self.specs.values()
            if c.instruction.startswith(instruction_prefix)
        )

    @property
    def issue_counts(self) -> Dict[str, int]:
        """Nsight-style instruction-class issue counters."""
        return {
            "ldmatrix": self.issues("ldmatrix"),
            "mma": self.issues("mma"),
            "shfl": self.issues("shfl"),
            "wgmma": self.issues("wgmma"),
            "tma": self.issues("tma"),
        }

    def spec(self, label_substring: str) -> SpecCounters:
        """The unique spec whose label contains ``label_substring``."""
        hits = [c for label, c in self.specs.items()
                if label_substring in label]
        if len(hits) != 1:
            raise KeyError(
                f"{label_substring!r} matches {len(hits)} spec labels "
                f"(have: {sorted(self.specs)})"
            )
        return hits[0]

    def conflict_degree(self, instruction_prefix: str = "") -> float:
        """Measured transactions per shared wavefront over matching specs."""
        trans = wavefronts = 0
        for c in self.specs.values():
            if c.instruction.startswith(instruction_prefix):
                trans += c.shared_transactions
                wavefronts += c.shared_wavefronts
        if wavefronts == 0:
            return 1.0
        return trans / wavefronts

    def worst_conflict_degree(self, instruction_prefix: str = "") -> float:
        """Worst per-spec conflict degree (compare against the static
        worst-buffer model of ``perfmodel.bank_conflict_degree``)."""
        return max(
            (c.conflict_degree for c in self.specs.values()
             if c.instruction.startswith(instruction_prefix)
             and c.shared_wavefronts),
            default=1.0,
        )

    # -- export -------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel_name,
            "grid_size": self.grid_size,
            "block_size": self.block_size,
            "global_load_transactions": self.global_load_transactions,
            "global_store_transactions": self.global_store_transactions,
            "global_load_bytes": self.global_load_bytes,
            "global_store_bytes": self.global_store_bytes,
            "shared_transactions": self.shared_transactions,
            "shared_wavefronts": self.shared_wavefronts,
            "shared_bytes": self.shared_bytes,
            "bank_conflicts": self.bank_conflicts,
            "bulk_transactions": self.bulk_transactions,
            "bulk_load_bytes": self.bulk_load_bytes,
            "bulk_store_bytes": self.bulk_store_bytes,
            "barriers": dict(self.barriers),
            "issue_counts": self.issue_counts,
            "occupancy": round(self.occupancy, 4),
            "specs": {label: c.as_dict()
                      for label, c in sorted(self.specs.items())},
        }

    def chrome_trace(self) -> dict:
        """The per-(block, spec) timeline as Chrome ``trace_event`` JSON."""
        trace = []
        for block, label, start, duration, merged in self.events:
            trace.append({
                "name": label,
                "ph": "X",
                "pid": 0,
                "tid": block,
                "ts": start,
                "dur": max(1, duration),
                "args": {"merged_executions": merged},
            })
        meta = [{
            "name": "process_name", "ph": "M", "pid": 0,
            "args": {"name": f"sim:{self.kernel_name}"},
        }]
        meta += [{
            "name": "thread_name", "ph": "M", "pid": 0, "tid": bid,
            "args": {"name": f"block {bid}"},
        } for bid in sorted({e[0] for e in self.events})]
        return {
            "traceEvents": meta + trace,
            "displayTimeUnit": "ns",
            "otherData": {"dropped_events": self.dropped_events},
        }

    def save_chrome_trace(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)

    def summary(self) -> str:
        """A human-readable per-spec counter table."""
        header = (f"{'spec':<44} {'issues':>8} {'gl.trans':>9} "
                  f"{'sh.trans':>9} {'conflicts':>9} {'occ':>6}")
        lines = [f"profile of {self.kernel_name} "
                 f"(grid={self.grid_size}, block={self.block_size})",
                 header, "-" * len(header)]
        for label in sorted(self.specs):
            c = self.specs[label]
            lines.append(
                f"{label[:44]:<44} {c.issues:>8} {c.global_transactions:>9} "
                f"{c.shared_transactions:>9} {c.bank_conflicts:>9} "
                f"{c.occupancy:>6.2f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':<44} {'':>8} {self.global_transactions:>9} "
            f"{self.shared_transactions:>9} {self.bank_conflicts:>9} "
            f"{self.occupancy:>6.2f}"
        )
        lines.append(
            f"barriers: {self.barriers['block']} block / "
            f"{self.barriers['warp']} warp; issue counts: "
            + ", ".join(f"{k}={v}" for k, v in self.issue_counts.items())
        )
        return "\n".join(lines)

    def __repr__(self):
        return (f"KernelProfile({self.kernel_name!r}, "
                f"gl={self.global_transactions}, "
                f"sh={self.shared_transactions}, "
                f"conflicts={self.bank_conflicts})")


class Profiler:
    """Observes one simulated launch; produces a :class:`KernelProfile`.

    Lifecycle (driven by :class:`~repro.sim.interp.Simulator`):
    ``begin_block`` per thread-block, then per atomic-spec lane-group
    execution ``begin_exec`` / (``record`` per element access, called
    from :class:`~repro.sim.context.ExecCtx`) / ``end_exec``; ``barrier``
    at sync statements; finally ``finish`` returns the profile.
    """

    def __init__(self, max_events: int = 100_000):
        self.max_events = max_events
        self._specs: Dict[str, SpecCounters] = {}
        self._barriers = {"block": 0, "warp": 0}
        self._events: List[List] = []
        self._dropped = 0
        self._block = 0
        self._clocks: Dict[int, int] = {}
        self._cur: Optional[Tuple[str, str, int, int]] = None
        self._records: List[tuple] = []

    # -- lifecycle hooks ----------------------------------------------------
    def begin_block(self, block_id: int) -> None:
        self._block = block_id
        self._clocks.setdefault(block_id, 0)

    def begin_exec(self, label: str, instruction: str, width: int,
                   lanes: Sequence[int]) -> None:
        self._cur = (label, instruction, width, len(lanes))
        self._records = []

    def record(self, tensor, lane: int, offsets: Sequence[int],
               kind: str) -> None:
        """One lane's element accesses (physical offsets, post-mask).

        ``offsets`` may be a list or a numpy array — the plan engine
        feeds rows of its precomputed index arrays through the same
        funnel, so both engines charge identical counters.
        """
        if self._cur is None or len(offsets) == 0:
            return
        self._records.append(
            (tensor.mem, tensor.buffer, tensor.dtype.bytes, kind, lane,
             offsets)
        )

    def exec_records(self) -> Optional[list]:
        """The active execution's record sink (None outside begin/end).

        The plan engine hoists a tensor's ``(mem, buffer, itemsize)``
        once per emission entry and appends :meth:`record`-shaped
        tuples here directly, skipping the per-lane call overhead.
        """
        return None if self._cur is None else self._records

    def barrier(self, scope: str) -> None:
        self._barriers[scope] = self._barriers.get(scope, 0) + 1
        self._advance(f"barrier.{scope}", 1)

    def end_exec(self) -> None:
        cur, records = self._cur, self._records
        self._cur, self._records = None, []
        if cur is None:
            return
        label, instruction, width, slots = cur
        counters = self._specs.get(label)
        if counters is None:
            counters = self._specs[label] = SpecCounters(
                label, instruction, width
            )
        counters.executions += 1
        active = {rec[4] for rec in records}
        counters.issues += 1 if width > 1 else len(active)
        counters.active_lanes += len(active)
        counters.lane_slots += slots
        transactions = self._account(counters, records)
        self._advance(label, max(1, transactions))

    # -- replayed executions ------------------------------------------------
    # The counter/timeline effect of one begin_exec..end_exec cycle is a
    # pure function of its record stream.  The plan engine's charge
    # cache captures that effect once (as a per-field delta vector) and
    # replays it for executions whose index arrays are provably the
    # same objects, skipping the per-record accounting loop.
    def exec_snapshot(self, label: str) -> Optional[tuple]:
        """Current counter values for ``label`` (None if unseen)."""
        counters = self._specs.get(label)
        if counters is None:
            return None
        return tuple(getattr(counters, f) for f in EXEC_DELTA_FIELDS)

    def exec_delta(self, label: str, before: Optional[tuple]) -> tuple:
        """Per-field counter change since :meth:`exec_snapshot`."""
        after = self.exec_snapshot(label)
        if before is None:
            return after
        return tuple(a - b for a, b in zip(after, before))

    def apply_exec(self, label: str, instruction: str, width: int,
                   delta: tuple) -> None:
        """Replay one execution's captured counter/timeline effect."""
        counters = self._specs.get(label)
        if counters is None:
            counters = self._specs[label] = SpecCounters(
                label, instruction, width
            )
        for field, change in zip(EXEC_DELTA_FIELDS, delta):
            if change:
                setattr(counters, field, getattr(counters, field) + change)
        transactions = sum(delta[i] for i in _EXEC_DELTA_TX)
        self._advance(label, max(1, transactions))

    def finish(self, kernel_name: str, grid_size: int,
               block_size: int) -> KernelProfile:
        profile = KernelProfile(kernel_name, grid_size, block_size)
        profile.specs = self._specs
        profile.barriers = self._barriers
        profile.events = [tuple(e) for e in self._events]
        profile.dropped_events = self._dropped
        return profile

    # -- accounting ---------------------------------------------------------
    def _account(self, counters: SpecCounters, records) -> int:
        """Charge one lane-group execution's records; return transactions."""
        groups: Dict[tuple, List[tuple]] = {}
        total = 0
        for mem, buffer, itemsize, kind, lane, offsets in records:
            if kind in ("bulk_read", "bulk_write"):
                # TMA bulk tensor traffic: dedicated accounting, outside
                # the warp coalescing window and the bank model.
                total += self._charge_bulk(counters, kind, itemsize,
                                           offsets)
                continue
            # Identity first: tensors carry the GL/SH/RF singletons, so
            # the label-equality fallback only runs for foreign copies.
            if mem is SH:
                is_shared = True
            elif mem is GL:
                is_shared = False
            elif mem == SH:
                is_shared = True
            elif mem == GL:
                is_shared = False
            else:
                continue  # register-file traffic costs no memory transactions
            key = (is_shared, buffer, kind, lane // WARP_SIZE)
            groups.setdefault(key, []).append((itemsize, offsets))
        for (is_shared, _buffer, kind, _warp), recs in groups.items():
            per_record = [(itemsize, _segment_runs(offsets, itemsize))
                          for itemsize, offsets in recs]
            n_instr = max(len(segs) for _, segs in per_record)
            for si in range(n_instr):
                parts = [(itemsize, *segs[si])
                         for itemsize, segs in per_record if si < len(segs)]
                if is_shared:
                    total += self._charge_shared(counters, kind, parts)
                else:
                    total += self._charge_global(counters, kind, parts)
        return total

    def _charge_bulk(self, counters: SpecCounters, kind: str,
                     itemsize: int, offsets) -> int:
        """One TMA bulk tensor copy: count distinct 32B sectors touched."""
        arr = np.asarray(offsets, dtype=np.int64)
        start = arr * itemsize
        first = start // GLOBAL_SECTOR_BYTES
        last = (start + itemsize - 1) // GLOBAL_SECTOR_BYTES
        sectors = int(np.unique(np.concatenate([first, last])).size)
        nbytes = int(arr.size) * itemsize
        if kind == "bulk_read":
            counters.bulk_load_transactions += sectors
            counters.bulk_load_bytes += nbytes
        else:
            counters.bulk_store_transactions += sectors
            counters.bulk_store_bytes += nbytes
        return sectors

    def _charge_global(self, counters: SpecCounters, kind: str,
                       parts) -> int:
        """One warp-level global instruction: count distinct 32B sectors."""
        sectors = set()
        nbytes = 0
        for itemsize, lo_off, count in parts:
            lo = lo_off * itemsize
            hi = (lo_off + count) * itemsize - 1
            sectors.update(range(lo // GLOBAL_SECTOR_BYTES,
                                 hi // GLOBAL_SECTOR_BYTES + 1))
            nbytes += count * itemsize
        if kind == "read":
            counters.global_load_transactions += len(sectors)
            counters.global_load_bytes += nbytes
        else:
            counters.global_store_transactions += len(sectors)
            counters.global_store_bytes += nbytes
        return len(sectors)

    def _charge_shared(self, counters: SpecCounters, kind: str,
                       parts) -> int:
        """Pack segments into <=128B wavefronts; count bank serialisation."""
        total = 0
        wave: List[tuple] = []
        wave_bytes = 0
        for itemsize, lo_off, count in parts:
            seg_bytes = count * itemsize
            if wave and wave_bytes + seg_bytes > SMEM_WAVEFRONT_BYTES:
                total += self._flush_wavefront(counters, kind, wave,
                                               wave_bytes)
                wave, wave_bytes = [], 0
            wave.append((itemsize, lo_off, count))
            wave_bytes += seg_bytes
        if wave:
            total += self._flush_wavefront(counters, kind, wave, wave_bytes)
        return total

    def _flush_wavefront(self, counters: SpecCounters, kind: str,
                         wave, wave_bytes: int) -> int:
        # A segment's elements are consecutive, so its 4-byte words are
        # the contiguous range between its first and last byte.
        banks: Dict[int, set] = {}
        for itemsize, lo_off, count in wave:
            lo_byte = lo_off * itemsize
            hi_byte = (lo_off + count) * itemsize - 1
            for word in range(lo_byte // SMEM_BANK_BYTES,
                              hi_byte // SMEM_BANK_BYTES + 1):
                banks.setdefault(word % SMEM_BANKS, set()).add(word)
        degree = max((len(words) for words in banks.values()), default=1)
        if kind == "read":
            counters.shared_load_transactions += degree
            counters.shared_load_wavefronts += 1
            counters.shared_load_bank_conflicts += degree - 1
            counters.shared_load_bytes += wave_bytes
        else:
            counters.shared_store_transactions += degree
            counters.shared_store_wavefronts += 1
            counters.shared_store_bank_conflicts += degree - 1
            counters.shared_store_bytes += wave_bytes
        return degree

    # -- timeline -----------------------------------------------------------
    def _advance(self, label: str, duration: int) -> None:
        block = self._block
        start = self._clocks.get(block, 0)
        self._clocks[block] = start + duration
        events = self._events
        if events:
            last = events[-1]
            if last[0] == block and last[1] == label \
                    and last[2] + last[3] == start:
                last[3] += duration
                last[4] += 1
                return
        if len(events) >= self.max_events:
            self._dropped += 1
            return
        events.append([block, label, start, duration, 1])
