"""Execution contexts handed to atomic-spec executors."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..tensor.memspace import RF, SH
from ..tensor.tensor import Tensor
from .access import accessor
from .machine import Machine

Predicate = Tuple[Callable[[dict], int], Callable[[dict], int]]


class ExecCtx:
    """Per-execution-point context for one atomic spec.

    ``lanes`` are the absolute in-block thread ids cooperating on this
    execution (all block threads for per-thread atomics, one group's
    lanes for collectives).  ``env`` contains block/loop/symbol values;
    thread-dependent expressions are evaluated via :meth:`lane_env`.
    """

    __slots__ = ("machine", "block_id", "env", "lanes", "preds")

    def __init__(
        self,
        machine: Machine,
        block_id: int,
        env: dict,
        lanes: Sequence[int],
        preds: Sequence[Predicate] = (),
    ):
        self.machine = machine
        self.block_id = block_id
        self.env = env
        self.lanes = list(lanes)
        self.preds = list(preds)

    def lane_env(self, lane: int) -> dict:
        env = dict(self.env)
        env["threadIdx.x"] = lane
        return env

    def active(self, env: dict) -> bool:
        """Evaluate the enclosing If-predicates for one lane."""
        return all(lhs(env) < rhs(env) for lhs, rhs in self.preds)

    # -- tensor element transfer ---------------------------------------------
    def _buffer(self, tensor: Tensor, lane: int, min_size: int) -> np.ndarray:
        return self.machine.buffer(
            tensor.mem, tensor.buffer, tensor.dtype, self.block_id, lane,
            min_size,
        )

    def read(self, tensor: Tensor, env: dict, lane: int, fill=0,
             bulk: bool = False) -> np.ndarray:
        """Read the view's elements (colex order); OOB lanes read ``fill``.

        Guarded-out elements never touch memory (predicated loads).
        ``bulk`` marks TMA bulk-tensor traffic: the sanitizer still sees
        an ordinary read, but the profiler accounts it in the dedicated
        bulk counters instead of the per-lane load path.
        """
        acc = accessor(tensor)
        offsets = acc.offsets(env)
        mask = acc.mask(env)
        san = self.machine.sanitizer
        prof = self.machine.profiler
        if san is not None or prof is not None:
            live = offsets if mask is None else \
                [o for o, ok in zip(offsets, mask) if ok]
            if san is not None:
                san.record(tensor, self.block_id, lane, live, "read")
            if prof is not None:
                prof.record(tensor, lane, live,
                            "bulk_read" if bulk else "read")
        if mask is not None:
            offsets = [o if ok else 0 for o, ok in zip(offsets, mask)]
        buf = self._buffer(tensor, lane, max(offsets) + 1)
        values = buf[offsets]
        if mask is not None:
            values = np.where(np.asarray(mask), values, fill).astype(buf.dtype)
        if tensor.mem == SH and not bulk:
            self._record_smem([offsets], tensor)
        return values

    def write(self, tensor: Tensor, env: dict, lane: int, values,
              bulk: bool = False) -> None:
        """Write elements (colex order); guarded-out elements are skipped.

        Stores to dtypes that declare a ``quantize`` function (bf16/fp8
        round-on-store model) snap the values onto the format's grid
        first.  ``bulk`` routes the profiler accounting to the TMA bulk
        counters.
        """
        acc = accessor(tensor)
        offsets = acc.offsets(env)
        mask = acc.mask(env)
        san = self.machine.sanitizer
        prof = self.machine.profiler
        kind = "bulk_write" if bulk else "write"
        if tensor.dtype.quantize is not None:
            values = tensor.dtype.quantize(
                np.asarray(values, dtype=np.float32))
        if mask is not None:
            live = [o for o, ok in zip(offsets, mask) if ok]
            if not live:
                return
            if san is not None:
                san.record(tensor, self.block_id, lane, live, "write")
            if prof is not None:
                prof.record(tensor, lane, live, kind)
            buf = self._buffer(tensor, lane, max(live) + 1)
            values = np.asarray(values).reshape(-1)
            for off, val, ok in zip(offsets, values, mask):
                if ok:
                    buf[off] = val
        else:
            if san is not None:
                san.record(tensor, self.block_id, lane, offsets, "write")
            if prof is not None:
                prof.record(tensor, lane, offsets, kind)
            buf = self._buffer(tensor, lane, max(offsets) + 1)
            buf[offsets] = np.asarray(values, dtype=buf.dtype).reshape(-1)
        if tensor.mem == SH and not bulk:
            self._record_smem([offsets], tensor)

    def read_lanes(self, tensor: Tensor, fill=0) -> List[np.ndarray]:
        """Read the view for every lane of this context."""
        return [
            self.read(tensor, self.lane_env(lane), lane, fill)
            for lane in self.lanes
        ]

    def write_lanes(self, tensor: Tensor, per_lane_values) -> None:
        for lane, values in zip(self.lanes, per_lane_values):
            self.write(tensor, self.lane_env(lane), lane, values)

    def read_frag(self, tensor: Tensor, env: dict, lane: int) -> np.ndarray:
        """Read a register fragment in (tile-major, colex) order.

        Handles one level of tiling: values of tile 0 first, then tile 1,
        matching the register numbering of mma/ldmatrix fragments.
        """
        from .access import tile_views

        parts = [self.read(v, env, lane) for v in tile_views(tensor)]
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def write_frag(self, tensor: Tensor, env: dict, lane: int, values) -> None:
        from .access import tile_views

        values = np.asarray(values).reshape(-1)
        pos = 0
        for view in tile_views(tensor):
            n = view.layout.size() if view.rank else 1
            self.write(view, env, lane, values[pos:pos + n])
            pos += n

    def _record_smem(self, offset_groups, tensor: Tensor) -> None:
        itemsize = tensor.dtype.bytes
        for offsets in offset_groups:
            self.machine.bank_model.record([o * itemsize for o in offsets])
