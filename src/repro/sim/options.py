"""The one run-options surface for simulated launches.

``Simulator.run``, the tuner gate and the conformance harness all used
to grow their own keyword lists (``sanitize=``, ``profile=``, ``seed=``,
...).  :class:`RunOptions` is the single carrier: construct one and hand
it to any of them.  The legacy keywords remain accepted for one release
and are mapped explicitly onto an options value via :func:`resolve_run_options`
— never through ``**kwargs``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

#: The execution engines ``Simulator.run`` can dispatch to.
ENGINES = ("vectorized", "reference")


@dataclass(frozen=True)
class RunOptions:
    """How one simulated launch should execute.

    * ``sanitize`` — ``False`` (off), ``True`` (raise on findings) or
      ``"report"`` (collect findings without raising); see
      :mod:`repro.sim.sanitizer`.
    * ``profile`` — attach the instruction profiler
      (:mod:`repro.sim.profiler`) and return its counters.
    * ``engine`` — ``"vectorized"`` (compiled launch plans,
      :mod:`repro.sim.plan`; the default) or ``"reference"`` (the scalar
      interpreter).  Both are bit-identical; the reference engine exists
      as the semantics ground truth and cross-check target.
    * ``seed`` — RNG seed for callers that generate problem data (the
      tuner gate and the conformance harness); ``Simulator.run`` itself
      draws no random numbers and ignores it.
    """

    sanitize: Union[bool, str] = False
    profile: bool = False
    engine: str = "vectorized"
    seed: int = 0

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )

    def merged(self, *, sanitize=None, profile=None, engine=None,
               seed=None) -> "RunOptions":
        """A copy with any explicitly-given legacy keyword applied."""
        changes = {}
        if sanitize is not None:
            changes["sanitize"] = sanitize
        if profile is not None:
            changes["profile"] = profile
        if engine is not None:
            changes["engine"] = engine
        if seed is not None:
            changes["seed"] = seed
        return replace(self, **changes) if changes else self


def resolve_run_options(
    options: Optional[RunOptions] = None,
    *,
    sanitize=None,
    profile=None,
    engine=None,
    seed=None,
) -> RunOptions:
    """Merge an optional :class:`RunOptions` with legacy keywords.

    Explicit keywords win over the options value (so call sites can
    share one options object and override a single knob).
    """
    base = options if options is not None else RunOptions()
    if not isinstance(base, RunOptions):
        raise TypeError(
            f"options must be a RunOptions, got {type(base).__name__}"
        )
    return base.merged(sanitize=sanitize, profile=profile, engine=engine,
                       seed=seed)


__all__ = ["RunOptions", "resolve_run_options", "ENGINES"]
