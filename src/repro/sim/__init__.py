"""The functional GPU simulator (hardware substitute; see DESIGN.md)."""

from .access import TensorAccessor, accessor, compile_expr, tile_views
from .context import ExecCtx
from .interp import SimulationError, Simulator
from .machine import BankModel, Machine
from .sanitizer import (
    Sanitizer, SanitizerError, SanitizerReport, strip_barriers,
)

__all__ = [
    "TensorAccessor", "accessor", "compile_expr", "tile_views",
    "ExecCtx", "SimulationError", "Simulator", "BankModel", "Machine",
    "Sanitizer", "SanitizerError", "SanitizerReport", "strip_barriers",
]
