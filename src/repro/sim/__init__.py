"""The functional GPU simulator (hardware substitute; see DESIGN.md)."""

from .access import (
    TensorAccessor, accessor, clear_accessor_caches, compile_expr,
    get_index_compiler, index_compiler, set_index_compiler, tile_views,
)
from .context import ExecCtx
from .errors import SimulationError
from .interp import RunResult, Simulator, bind_launch
from .machine import BankModel, Machine
from .options import ENGINES, RunOptions, resolve_run_options
from .plan import (
    CacheStats, LaunchPlan, PlanCache, kernel_fingerprint, plan_cache_key,
)
from .profiler import KernelProfile, Profiler, SpecCounters
from .sanitizer import (
    Sanitizer, SanitizerError, SanitizerReport, strip_barriers,
)

__all__ = [
    "TensorAccessor", "accessor", "clear_accessor_caches",
    "compile_expr", "get_index_compiler", "index_compiler",
    "set_index_compiler", "tile_views",
    "ExecCtx", "RunResult", "SimulationError", "Simulator", "bind_launch",
    "BankModel", "Machine",
    "ENGINES", "RunOptions", "resolve_run_options",
    "CacheStats", "LaunchPlan", "PlanCache", "kernel_fingerprint",
    "plan_cache_key",
    "KernelProfile", "Profiler", "SpecCounters",
    "Sanitizer", "SanitizerError", "SanitizerReport", "strip_barriers",
]
