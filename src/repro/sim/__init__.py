"""The functional GPU simulator (hardware substitute; see DESIGN.md)."""

from .access import TensorAccessor, accessor, compile_expr, tile_views
from .context import ExecCtx
from .errors import SimulationError
from .interp import RunResult, Simulator
from .machine import BankModel, Machine
from .options import ENGINES, RunOptions, resolve_run_options
from .plan import LaunchPlan, PlanCache
from .profiler import KernelProfile, Profiler, SpecCounters
from .sanitizer import (
    Sanitizer, SanitizerError, SanitizerReport, strip_barriers,
)

__all__ = [
    "TensorAccessor", "accessor", "compile_expr", "tile_views",
    "ExecCtx", "RunResult", "SimulationError", "Simulator",
    "BankModel", "Machine",
    "ENGINES", "RunOptions", "resolve_run_options",
    "LaunchPlan", "PlanCache",
    "KernelProfile", "Profiler", "SpecCounters",
    "Sanitizer", "SanitizerError", "SanitizerReport", "strip_barriers",
]
