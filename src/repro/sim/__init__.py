"""The functional GPU simulator (hardware substitute; see DESIGN.md)."""

from .access import TensorAccessor, accessor, compile_expr, tile_views
from .context import ExecCtx
from .interp import RunResult, SimulationError, Simulator
from .machine import BankModel, Machine
from .profiler import KernelProfile, Profiler, SpecCounters
from .sanitizer import (
    Sanitizer, SanitizerError, SanitizerReport, strip_barriers,
)

__all__ = [
    "TensorAccessor", "accessor", "compile_expr", "tile_views",
    "ExecCtx", "RunResult", "SimulationError", "Simulator",
    "BankModel", "Machine",
    "KernelProfile", "Profiler", "SpecCounters",
    "Sanitizer", "SanitizerError", "SanitizerReport", "strip_barriers",
]
