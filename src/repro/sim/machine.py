"""Simulated GPU memory state for the functional simulator.

Substitutes for real GPU hardware (see DESIGN.md): buffers live in numpy
arrays scoped exactly like the CUDA memory spaces — one global space per
launch, one shared space per thread-block, one register file per thread.
Shared-memory accesses are additionally run through a bank model so
layout/swizzle choices have observable consequences.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..tensor.dtypes import DType
from ..tensor.memspace import GL, RF, SH, MemSpace

#: Shared memory is organised in 32 four-byte-wide banks on all
#: architectures this repo models.
SMEM_BANKS = 32
SMEM_BANK_BYTES = 4


class BankModel:
    """Counts shared-memory bank conflicts per collective access.

    A warp-wide access in which k threads hit different addresses in the
    same bank serialises into k transactions; accesses to the *same*
    address broadcast and do not conflict.
    """

    __slots__ = ("accesses", "transactions", "worst_degree")

    def __init__(self):
        self.accesses = 0
        self.transactions = 0
        self.worst_degree = 1

    def record(self, byte_offsets) -> int:
        """Record one collective access; returns its conflict degree."""
        banks: Dict[int, set] = {}
        for off in byte_offsets:
            bank = (off // SMEM_BANK_BYTES) % SMEM_BANKS
            banks.setdefault(bank, set()).add(off // SMEM_BANK_BYTES)
        degree = max((len(words) for words in banks.values()), default=1)
        self.accesses += 1
        self.transactions += degree
        self.worst_degree = max(self.worst_degree, degree)
        return degree

    def record_batch(self, byte_offset_rows) -> None:
        """Record many collective accesses from a 2-D offset array.

        Each row of ``byte_offset_rows`` is one access (what a single
        :meth:`record` call would receive); the counter updates are
        identical to calling :meth:`record` row by row.  This is the
        bulk funnel the vectorized plan engine feeds from its index
        arrays instead of per-lane callbacks.
        """
        rows = np.asarray(byte_offset_rows)
        if rows.ndim != 2:
            rows = rows.reshape(len(rows), -1)
        n, width = rows.shape
        if n == 0:
            return
        if width == 0:
            # Degenerate empty accesses count as conflict-free.
            self.accesses += n
            self.transactions += n
            return
        words = np.sort(rows // SMEM_BANK_BYTES, axis=1)
        first = np.ones((n, 1), dtype=bool)
        distinct = (np.concatenate([first, words[:, 1:] != words[:, :-1]],
                                   axis=1)
                    if width > 1 else first)
        keys = (np.arange(n)[:, None] * SMEM_BANKS
                + words % SMEM_BANKS)[distinct]
        per_bank = np.bincount(keys.ravel(), minlength=n * SMEM_BANKS)
        degrees = per_bank.reshape(n, SMEM_BANKS).max(axis=1)
        np.maximum(degrees, 1, out=degrees)
        self.accesses += n
        self.transactions += int(degrees.sum())
        self.worst_degree = max(self.worst_degree, int(degrees.max()))

    @property
    def conflict_rate(self) -> float:
        """Average transactions per access (1.0 = conflict-free)."""
        if self.accesses == 0:
            return 1.0
        return self.transactions / self.accesses


class Machine:
    """All memory state of one simulated kernel launch."""

    def __init__(self):
        self._global: Dict[str, np.ndarray] = {}
        self._shared: Dict[Tuple[int, str], np.ndarray] = {}
        self._regs: Dict[Tuple[int, int, str], np.ndarray] = {}
        self._declared: Dict[str, Tuple[DType, int]] = {}
        self.bank_model = BankModel()
        #: Optional :class:`repro.sim.sanitizer.Sanitizer` observing
        #: every element access (attached by ``Simulator.run``).
        self.sanitizer = None
        #: Optional :class:`repro.sim.profiler.Profiler` riding the same
        #: access funnel (attached by ``Simulator.run(profile=True)``).
        self.profiler = None
        #: Outstanding (committed, un-awaited) TMA bulk copies per block.
        self._tma_pending: Dict[int, int] = {}

    # -- TMA async-copy ledger ---------------------------------------------------
    def tma_commit(self, block: int) -> None:
        """Record one committed ``cp.async.bulk`` whose data is not yet
        guaranteed visible (until the next barrier drains it)."""
        self._tma_pending[block] = self._tma_pending.get(block, 0) + 1

    def tma_drain(self, block: int) -> None:
        """A barrier waits for all of the block's outstanding TMA copies."""
        self._tma_pending[block] = 0

    def tma_check_drained(self, block: int) -> None:
        """End-of-block check: un-awaited TMA copies are a kernel bug."""
        pending = self._tma_pending.get(block, 0)
        if pending:
            from .errors import SimulationError

            raise SimulationError(
                f"block {block} ended with {pending} committed TMA bulk "
                f"cop{'y' if pending == 1 else 'ies'} never awaited; "
                f"insert a barrier after the last tma-labelled Move"
            )

    # -- declarations -----------------------------------------------------------
    def declare(self, name: str, dtype: DType, size: int) -> None:
        """Pre-declare a buffer's dtype and size (from Allocate specs)."""
        self._declared[name] = (dtype, size)

    def bind_global(self, name: str, array: np.ndarray) -> None:
        """Bind a kernel parameter to backing storage."""
        self._global[name] = array.reshape(-1)

    def global_array(self, name: str) -> np.ndarray:
        return self._global[name]

    # -- buffer resolution ---------------------------------------------------------
    def buffer(
        self,
        mem: MemSpace,
        name: str,
        dtype: DType,
        block: int,
        thread: int,
        min_size: int,
    ) -> np.ndarray:
        if mem == GL:
            if name not in self._global:
                raise KeyError(
                    f"global buffer {name!r} was not bound before launch"
                )
            return self._global[name]
        if mem == SH:
            return self._scoped(self._shared, (block, name), name, dtype, min_size)
        if mem == RF:
            return self._scoped(
                self._regs, (block, thread, name), name, dtype, min_size
            )
        raise ValueError(f"unknown memory space {mem!r}")

    def _scoped(self, table, key, name, dtype: DType, min_size: int) -> np.ndarray:
        buf = table.get(key)
        if buf is None:
            declared = self._declared.get(name)
            size = max(min_size, declared[1] if declared else 0)
            np_dtype = (declared[0] if declared else dtype).np_dtype
            buf = np.zeros(size, dtype=np_dtype)
            table[key] = buf
        elif buf.size < min_size:
            grown = np.zeros(min_size, dtype=buf.dtype)
            grown[: buf.size] = buf
            table[key] = grown
            buf = grown
        return buf

    # -- introspection ---------------------------------------------------------------
    def shared_bytes(self, block: int = 0) -> int:
        """Total shared memory allocated by one block."""
        return sum(
            buf.size * buf.itemsize
            for (bid, _), buf in self._shared.items()
            if bid == block
        )

    def register_values(self, block: int, thread: int, name: str) -> Optional[np.ndarray]:
        return self._regs.get((block, thread, name))
