"""Static shared-memory bank-conflict analysis for access patterns.

Complements the dynamic :class:`~repro.sim.machine.BankModel`: given the
physical byte offsets a warp's lanes touch in one collective access,
compute the transaction count the bank hardware needs.  Used by the
swizzle ablation bench to quantify why optimized kernels use
"memory layouts beyond row- and column-major" (paper Section 3.2).

For *measured* counters over a whole kernel execution (these helpers
analyse one hypothetical access), run the kernel with
``Simulator.run(..., profile=True)`` — :mod:`repro.sim.profiler`
subsumes this module's per-access accounting.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..layout.linear import LinearLayoutError, bank_group_matrix
from ..tensor.tensor import Tensor
from .machine import SMEM_BANK_BYTES, SMEM_BANKS


def access_degree(lane_byte_offsets: Sequence[Sequence[int]]) -> int:
    """Conflict degree of one collective access.

    ``lane_byte_offsets[i]`` lists the bytes lane ``i`` touches.  Lanes
    hitting different words in the same bank serialise; same-word
    accesses broadcast.
    """
    banks = {}
    for offsets in lane_byte_offsets:
        words = {off // SMEM_BANK_BYTES for off in offsets}
        for word in words:
            banks.setdefault(word % SMEM_BANKS, set()).add(word)
    return max((len(words) for words in banks.values()), default=1)


def linear_ldmatrix_degree(smem: Tensor, row_tile: int = 0,
                           col_tile: int = 0) -> Optional[int]:
    """ldmatrix conflict degree by F2 rank, or None when inapplicable.

    For a flat row-major fp16 staging buffer at offset 0, the address
    of tile row ``r`` decomposes into bit-disjoint fields (tile base,
    row index, in-row column), so integer addition is XOR and the
    eight rows' bank groups form a coset of the bank-group matrix's
    image: exactly ``2**rank`` distinct groups, each serialising its
    ``2**(3-rank)`` aligned segments one word per bank.  The degree is
    therefore ``2**(3 - rank)`` for *every* tile of the buffer —
    no enumeration needed.  Preconditions the argument relies on
    (power-of-two row length, zero base offset, in-range tile) return
    None; callers fall back to offset enumeration.
    """
    layout = smem.layout
    shape, stride = layout.shape, layout.stride
    if (
        smem.guards is not None
        or not isinstance(shape, tuple) or len(shape) != 2
        or not all(isinstance(s, int) for s in shape)
        or stride != (shape[1], 1)
        or smem.dtype.bytes != 2
    ):
        return None
    rows, cols = shape
    if rows < 8 or cols < 8 or cols & (cols - 1):
        return None
    if (row_tile + 1) * 8 > rows or (col_tile + 1) * 8 > cols:
        return None
    try:
        if smem.offset.evaluate({}) != 0:
            return None
    except (KeyError, TypeError, AttributeError):
        return None
    try:
        mat = bank_group_matrix(cols, smem.swizzle, smem.dtype.bytes)
    except LinearLayoutError:
        return None
    return 1 << (3 - mat.rank())


def ldmatrix_conflict_degree(smem: Tensor, row_tile: int = 0,
                             col_tile: int = 0) -> int:
    """Conflict degree of one ldmatrix 8x8 fp16 matrix load.

    The instruction reads eight 16-byte rows of the ``(row_tile,
    col_tile)`` 8x8 sub-tile of ``smem`` (which may be swizzled); the
    degree is 1 when all eight rows land in distinct bank groups.
    Buffers the F2 model covers are scored by rank
    (:func:`linear_ldmatrix_degree`); anything else enumerates
    physical offsets (:func:`enumerated_ldmatrix_degree`).
    """
    degree = linear_ldmatrix_degree(smem, row_tile, col_tile)
    if degree is not None:
        return degree
    return enumerated_ldmatrix_degree(smem, row_tile, col_tile)


def enumerated_ldmatrix_degree(smem: Tensor, row_tile: int = 0,
                               col_tile: int = 0) -> int:
    """:func:`ldmatrix_conflict_degree` by brute-force offset
    enumeration — the reference the F2 fast path is checked against."""
    itemsize = smem.dtype.bytes
    lane_offsets: List[List[int]] = []
    for row in range(8):
        offsets = [
            smem.physical_offset((row_tile * 8 + row, col_tile * 8 + col))
            * itemsize
            for col in range(8)
        ]
        lane_offsets.append(offsets)
    return access_degree(lane_offsets)


def column_access_degree(smem: Tensor, col: int = 0) -> int:
    """Conflict degree of a warp reading one element per row down a
    column — the canonical worst case for row-major layouts."""
    itemsize = smem.dtype.bytes
    rows = min(32, smem.dim(0))
    return access_degree(
        [[smem.physical_offset((r, col)) * itemsize] for r in range(rows)]
    )
