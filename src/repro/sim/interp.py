"""The functional simulator: an interpreter for Graphene kernel IR.

Substitutes for running generated CUDA on a GPU (see DESIGN.md).  The
interpreter walks the decomposition statement tree once per thread-block
in statement-lockstep (every statement completes for all threads before
the next begins — a semantics at least as strong as barrier-correct
execution on hardware).  Leaf specs are matched against the target
architecture's atomic table and executed with the instruction's
data-to-thread-mapping semantics, so an incorrect layout or decomposition
produces incorrect numerics exactly as it would on a real GPU.

Lockstep is *stronger* than hardware: it subsumes barriers, so a
decomposition missing a ``__syncthreads()`` still computes correct
numerics here while racing on a GPU.  ``run(..., sanitize=True)``
closes that gap — a :class:`~repro.sim.sanitizer.Sanitizer` observes
every element access, advances barrier epochs at sync statements
instead of ignoring them, and the run raises
:class:`~repro.sim.sanitizer.SanitizerError` on any race,
out-of-bounds access, uninitialized read, or divergent barrier.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ir.stmt import (
    Barrier, Block, Comment, ForLoop, If, SpecStmt, Stmt, SyncThreads,
    SyncWarp, walk,
)
from ..specs.atomic import AtomicSpec, match_atomic
from ..specs.base import Allocate, Spec
from ..specs.kernel import Kernel
from ..tensor.memspace import GL
from ..threads.threadgroup import THREAD, ThreadGroup
from .access import compile_expr
from .context import ExecCtx
from .errors import SimulationError
from .machine import Machine
from .options import RunOptions, resolve_run_options
from .plan import PlanCache
from .profiler import KernelProfile, Profiler
from .sanitizer import Sanitizer, SanitizerError


@dataclass
class RunResult:
    """Everything one simulated launch produced.

    ``Simulator.run`` historically returned the bare :class:`Machine`;
    with the sanitizer and profiler a launch now has three outputs, so
    they travel together.  Access the machine explicitly as
    ``result.machine`` — the transitional attribute fall-through (which
    warned with ``DeprecationWarning``) has been removed.
    """

    machine: Machine
    sanitizer: Optional[Sanitizer] = None
    profile: Optional[KernelProfile] = None

    def __getattr__(self, name):
        if not name.startswith("_") and hasattr(self.machine, name):
            raise AttributeError(
                f"{type(self).__name__} has no attribute {name!r}: the "
                f"machine delegation shim was removed — use "
                f"result.machine.{name} instead"
            )
        raise AttributeError(
            f"{type(self).__name__!s} has no attribute {name!r}"
        )


def bind_launch(kernel, bindings, symbols, machine, sanitizer=None):
    """Set up one launch: check symbols, bind params, declare allocations.

    The launch-setup contract shared by ``Simulator.run`` and the serve
    layer's graph capture (:mod:`repro.serve.graph`): every kernel
    symbol must be bound, every parameter tensor gets its numpy array
    bound as a global buffer, and every ``Allocate`` in the body gets
    its backing buffer declared (swizzled tensors round their window up
    to a power of two so XOR'd offsets stay in range).
    """
    missing = [v.name for v in kernel.symbols if v.name not in symbols]
    if missing:
        raise SimulationError(f"unbound kernel symbols: {missing}")
    for param in kernel.params:
        if param.name not in bindings:
            raise SimulationError(f"missing binding for {param!r}")
        machine.bind_global(param.buffer, bindings[param.name])
        if sanitizer is not None:
            sanitizer.declare(param.buffer, GL,
                              int(np.asarray(bindings[param.name]).size))
    for alloc in kernel.allocations():
        cosize = alloc.layout.cosize()
        if not isinstance(cosize, int):
            raise SimulationError(
                f"Allocate of symbolic tensor {alloc!r} is unsupported"
            )
        if not alloc.swizzle.is_identity():
            window = 1
            while window < cosize:
                window <<= 1
            cosize = window
        machine.declare(alloc.buffer, alloc.dtype, cosize)
        if sanitizer is not None:
            sanitizer.declare(alloc.buffer, alloc.mem, cosize)


class Simulator:
    """Executes kernels functionally against an architecture's atomics.

    One simulator may be shared across threads: the compiled-closure
    caches below are per-thread, and :class:`~repro.sim.plan.PlanCache`
    is internally locked.
    """

    def __init__(self, arch):
        self.arch = arch
        # Per-thread compiled-closure caches (keyed on id(stmt)): the
        # reference interpreter clears them at the top of each run, so
        # sharing them across threads would corrupt a concurrent run.
        self._tls = threading.local()
        #: Compiled launch plans for the ``"vectorized"`` engine, keyed
        #: on kernel fingerprint + symbol/binding-shape signature.
        self.plan_cache = PlanCache()

    @property
    def _loop_cache(self) -> Dict[int, tuple]:
        try:
            return self._tls.loop_cache
        except AttributeError:
            self._tls.loop_cache = {}
            return self._tls.loop_cache

    @property
    def _pred_cache(self) -> Dict[int, list]:
        try:
            return self._tls.pred_cache
        except AttributeError:
            self._tls.pred_cache = {}
            return self._tls.pred_cache

    @property
    def _atomic_cache(self) -> Dict[int, "AtomicSpec"]:
        try:
            return self._tls.atomic_cache
        except AttributeError:
            self._tls.atomic_cache = {}
            return self._tls.atomic_cache

    # -- public API ----------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        bindings: Dict[str, np.ndarray],
        symbols: Optional[Dict[str, int]] = None,
        *,
        options: Optional[RunOptions] = None,
        sanitize=None,
        profile=None,
        engine=None,
    ) -> "RunResult":
        """Launch ``kernel`` over numpy-backed global buffers.

        ``bindings`` maps parameter tensor names to arrays (modified in
        place for outputs, exactly like buffers passed to a CUDA kernel).
        Returns a :class:`RunResult` carrying the machine for
        post-mortem inspection plus any sanitizer/profiler output.

        Behaviour is controlled by a :class:`~repro.sim.options.RunOptions`
        (``options=``); the ``sanitize``/``profile``/``engine`` keywords
        are explicit per-knob overrides of it.

        ``sanitize=True`` attaches a race/memory sanitizer (see
        :mod:`repro.sim.sanitizer`) and raises :class:`SanitizerError`
        after the launch if it found any hazard; ``sanitize="report"``
        collects findings without raising (inspect them on the result's
        ``sanitizer.reports``).

        ``profile=True`` attaches an instruction profiler (see
        :mod:`repro.sim.profiler`); the measured Nsight-style counters
        are returned as the result's ``profile``.

        ``engine="vectorized"`` (the default) executes through a cached
        compiled launch plan (:mod:`repro.sim.plan`);
        ``engine="reference"`` runs the scalar interpreter.  Both are
        bit-identical, including profiler counters and sanitizer
        reports.
        """
        opts = resolve_run_options(
            options, sanitize=sanitize, profile=profile, engine=engine
        )
        # Compiled-closure caches key on id(stmt); scoping them to one
        # run keeps a recycled id from a garbage-collected kernel from
        # resurrecting a stale closure (ids are unique only among live
        # objects, and kernels stay alive for the duration of a run).
        self._loop_cache.clear()
        self._pred_cache.clear()
        self._atomic_cache.clear()
        machine = Machine()
        sanitizer = Sanitizer() if opts.sanitize else None
        profiler = Profiler() if opts.profile else None
        machine.sanitizer = sanitizer
        machine.profiler = profiler
        symbols = dict(symbols or {})
        bind_launch(kernel, bindings, symbols, machine, sanitizer)
        block_size = kernel.block_size()
        if opts.engine == "vectorized":
            plan = self.plan_cache.lookup(kernel, self.arch, symbols,
                                          bindings)
            plan.replay(machine, symbols, sanitizer, profiler)
        else:
            for bid in range(kernel.grid_size()):
                if sanitizer is not None:
                    sanitizer.begin_block(bid)
                if profiler is not None:
                    profiler.begin_block(bid)
                env = dict(symbols)
                env["blockIdx.x"] = bid
                self._exec_block_stmts(
                    kernel.body, env, bid, [], machine, block_size
                )
                machine.tma_check_drained(bid)
        if sanitizer is not None and opts.sanitize != "report":
            sanitizer.raise_if_dirty()
        kernel_profile = None
        if profiler is not None:
            kernel_profile = profiler.finish(
                kernel.name, kernel.grid_size(), block_size
            )
        return RunResult(
            machine=machine, sanitizer=sanitizer, profile=kernel_profile
        )

    # -- statement execution -----------------------------------------------------
    def _exec_block_stmts(self, block, env, bid, preds, machine, nthreads):
        for stmt in block:
            self._exec_stmt(stmt, env, bid, preds, machine, nthreads)

    def _exec_stmt(self, stmt: Stmt, env, bid, preds, machine, nthreads):
        if isinstance(stmt, Block):
            self._exec_block_stmts(stmt, env, bid, preds, machine, nthreads)
        elif isinstance(stmt, ForLoop):
            start, stop, step, name = self._loop_bounds(stmt)
            lo = start(env)
            hi = stop(env)
            inc = step(env)
            for value in range(lo, hi, inc):
                env[name] = value
                self._exec_block_stmts(
                    stmt.body, env, bid, preds, machine, nthreads
                )
            env.pop(name, None)
        elif isinstance(stmt, If):
            # Predicate contract (see ir.stmt.If): every pair asserts
            # strict `lhs < rhs`.  Thread-uniform predicates select one
            # branch for the whole block; thread-dependent predicates
            # mean per-lane predicated execution of the then-branch and
            # are carried down to the leaf executors, so they admit no
            # else-branch.
            split = self._pred_cache.get(id(stmt))
            if split is None:
                uniform, varying = [], []
                for a, b in stmt.predicates:
                    pair = (compile_expr(a), compile_expr(b))
                    if "threadIdx.x" in (a.free_vars() | b.free_vars()):
                        varying.append(pair)
                    else:
                        uniform.append(pair)
                split = (uniform, varying)
                self._pred_cache[id(stmt)] = split
            uniform, varying = split
            if varying and stmt.orelse is not None:
                raise SimulationError(
                    "If with thread-dependent predicates cannot carry an "
                    "else branch: lanes diverge individually, so no "
                    "uniform branch decision exists (emit a second If "
                    "guarded by the complement predicate instead)"
                )
            if all(lhs(env) < rhs(env) for lhs, rhs in uniform):
                self._exec_block_stmts(
                    stmt.then, env, bid, preds + varying, machine, nthreads
                )
            elif stmt.orelse is not None:
                self._exec_block_stmts(
                    stmt.orelse, env, bid, preds, machine, nthreads
                )
        elif isinstance(stmt, Barrier):
            # Statement-lockstep execution subsumes barriers numerically;
            # the sanitizer consumes them as epoch boundaries and the
            # profiler counts them.
            sanitizer = machine.sanitizer
            if sanitizer is not None:
                divergent = 0
                if preds:
                    lane_env = dict(env)
                    for lane in range(nthreads):
                        lane_env["threadIdx.x"] = lane
                        if not all(lhs(lane_env) < rhs(lane_env)
                                   for lhs, rhs in preds):
                            divergent += 1
                sanitizer.barrier(stmt.scope, divergent)
            if machine.profiler is not None:
                machine.profiler.barrier(stmt.scope)
            # Barriers drain outstanding TMA bulk copies: after the wait,
            # their shared-memory data is guaranteed visible.
            machine.tma_drain(bid)
        elif isinstance(stmt, Comment):
            pass
        elif isinstance(stmt, SpecStmt):
            self._exec_spec(stmt.spec, env, bid, preds, machine, nthreads)
        else:
            raise SimulationError(f"cannot execute statement {stmt!r}")

    def _loop_bounds(self, stmt: ForLoop):
        cached = self._loop_cache.get(id(stmt))
        if cached is None:
            cached = (
                compile_expr(stmt.start),
                compile_expr(stmt.stop),
                compile_expr(stmt.step),
                stmt.var.name,
            )
            self._loop_cache[id(stmt)] = cached
        return cached

    # -- spec execution --------------------------------------------------------------
    def _exec_spec(self, spec: Spec, env, bid, preds, machine, nthreads):
        if isinstance(spec, Allocate):
            return  # handled during launch
        if spec.body is not None:
            self._exec_block_stmts(spec.body, env, bid, preds, machine, nthreads)
            return
        atomic = self._atomic_cache.get(id(spec))
        if atomic is None:
            atomic = match_atomic(spec, self.arch.atomics)
            self._atomic_cache[id(spec)] = atomic
        if atomic.execute is None:
            raise SimulationError(
                f"atomic spec {atomic.name} has no simulator semantics"
            )
        profiler = machine.profiler
        if machine.sanitizer is not None or profiler is not None:
            label = f"{spec.kind}:{atomic.name}"
            if spec.label:
                label += f"[{spec.label}]"
            if machine.sanitizer is not None:
                machine.sanitizer.enter_spec(label)
        for lanes in self._lane_groups(spec, nthreads):
            ctx = ExecCtx(machine, bid, env, lanes, preds)
            if profiler is not None:
                profiler.begin_exec(label, atomic.name, atomic.width, lanes)
                try:
                    atomic.execute(spec, ctx)
                finally:
                    profiler.end_exec()
            else:
                atomic.execute(spec, ctx)

    def _lane_groups(self, spec: Spec, nthreads: int) -> List[List[int]]:
        """Which lane sets execute this spec (one call per set)."""
        group = spec.thread_group()
        if group is None or group.rank == 0:
            # Per-thread: one call covering every thread in the block.
            return [list(range(nthreads))]
        base = group.base
        base_value = base.evaluate({}) if base.free_vars() == frozenset() else None
        if base_value is None:
            raise SimulationError(
                f"thread group base of {spec!r} must be constant"
            )
        if group.is_tiled():
            inner = group.element.layout
            groups = []
            for g in range(group.layout.size()):
                start = base_value + group.layout(g)
                groups.append(
                    [start + inner(i) for i in range(inner.size())]
                )
            return groups
        layout = group.layout
        return [[base_value + layout(i) for i in range(layout.size())]]
