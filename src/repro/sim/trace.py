"""Execution traces: replay a compiled plan without re-interpreting it.

A :class:`~repro.sim.plan.LaunchPlan` replay still walks the compiled
statement tree every time — loop bounds re-evaluate, environment dicts
rebuild, every view re-resolves its offset arrays through a cache keyed
on loop-variable values, and every buffer re-resolves through the
machine tables.  All of that work is *replay-invariant*: for a fixed
(kernel, symbols, binding shapes) signature the control flow, the row
sets, the offset/mask arrays and the buffer sizes come out identical on
every run — only the data differs (runners never branch on values).

So a :class:`PlanTrace` records, during one instrumented observers-off
replay, the flat sequence of leaf executions with everything resolved:

* the active row set of each leaf,
* per gather/scatter, the final index arrays (and guard masks) with a
  *direct reference* to the backing storage — the machine's global
  arrays (a captured graph's static slots) and trace-owned
  shared-memory / register-file arrays pre-sized at their final
  capacities,
* the total shared-memory bank-model charge, pre-aggregated (the bank
  counters are commutative sums and a max, so one bulk update equals
  the per-access feed exactly).

Replaying the trace then runs only the runners' data math: the recorded
descriptors stand in for ``read_bulk``/``write_bulk`` and control flow
disappears entirely.  Outputs and bank counters are bit-identical to a
plan replay because the descriptors *are* the arrays the plan engine
computed, consumed in the same order, and growth-by-zero-fill semantics
make the pre-sized trace storage indistinguishable from lazily grown
buffers.

Limits: traces carry no observer stream, so sanitized/profiled replays
must use the exact plan path; plans containing scalar-fallback leaves
(no vectorized runner) are not traceable and :func:`record_trace`
returns None.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .errors import SimulationError
from .machine import BankModel
from .plan import _Replay

#: Immutable empty environment handed to runners during trace replay;
#: recorded descriptors already bind every env-dependent quantity.
_EMPTY_ENV: dict = {}


class _Untraceable(Exception):
    """Raised mid-recording when the plan cannot be traced."""


# -- recorded operations -------------------------------------------------------
class _ReadOp:
    """One resolved gather: ``buf[index]`` plus the guard-mask fill."""

    __slots__ = ("space", "name", "buf", "index", "mask")

    def __init__(self, space, name, index, mask):
        self.space = space
        self.name = name
        self.buf = None  # patched by _finalize_block
        self.index = index
        self.mask = mask

    def gather(self):
        buf = self.buf
        values = buf[self.index]
        if self.mask is not None:
            values = np.where(self.mask, values, 0).astype(buf.dtype)
        return values


class _WriteOp:
    """One resolved unguarded scatter: ``buf[index] = values``."""

    __slots__ = ("space", "name", "buf", "index")

    def __init__(self, space, name, index):
        self.space = space
        self.name = name
        self.buf = None
        self.index = index

    def scatter(self, values):
        buf = self.buf
        buf[self.index] = values.astype(buf.dtype, copy=False)


class _MaskedWriteOp:
    """A guarded scatter: drop masked-out lanes, flatten, assign.

    ``keep`` is the partial row filter (None when every row kept at
    least one element), ``sel_shape`` the post-filter selection shape
    the values broadcast against, ``mask`` the post-filter guard.
    """

    __slots__ = ("space", "name", "buf", "index", "keep", "sel_shape",
                 "mask")

    def __init__(self, space, name, index, keep, sel_shape, mask):
        self.space = space
        self.name = name
        self.buf = None
        self.index = index
        self.keep = keep
        self.sel_shape = sel_shape
        self.mask = mask

    def scatter(self, values):
        if self.keep is not None:
            values = np.broadcast_to(
                values, self.keep.shape + values.shape[1:])[self.keep]
        self.buf[self.index] = np.broadcast_to(
            values, self.sel_shape)[self.mask]


class _SkipWriteOp:
    """A fully-guarded-out write: no buffer effect at all."""

    __slots__ = ()

    def scatter(self, values):
        pass


_SKIP_WRITE = _SkipWriteOp()


class _Leaf:
    """One recorded leaf execution: its spec plan, group, rows and ops."""

    __slots__ = ("sp", "gp", "rows", "ops")

    def __init__(self, sp, gp):
        self.sp = sp
        self.gp = gp
        self.rows = None
        self.ops: List[object] = []


# -- recording -----------------------------------------------------------------
def _op_space(vp) -> str:
    if vp.is_rf:
        return "rf"
    if vp.is_sh:
        return "sh"
    return "gl"


class _TraceRecorder:
    """Hook target installed on a :class:`~repro.sim.plan._Replay`.

    The plan engine calls ``begin_leaf`` / ``on_rows`` / ``on_read`` /
    ``on_write_*`` while executing normally; the recorder mirrors every
    resolved access into descriptor form and charges a private bank
    model with the same byte rows the machine's model saw.
    """

    def __init__(self):
        self.leaves: List[_Leaf] = []
        self.bank = BankModel()
        self._ops: Optional[List[object]] = None

    def begin_leaf(self, sp, gp) -> None:
        if sp.runner is None:
            raise _Untraceable(
                f"{sp.label} executes through the scalar fallback"
            )
        leaf = _Leaf(sp, gp)
        self.leaves.append(leaf)
        self._ops = leaf.ops

    def on_rows(self, rows) -> None:
        self.leaves[-1].rows = rows

    def on_read(self, vp, offs_eff, mask_sel, lane_ids, fill) -> None:
        if fill != 0:
            raise _Untraceable("read with a non-zero guard fill")
        index = ((lane_ids[:, None], offs_eff) if lane_ids is not None
                 else offs_eff)
        self._ops.append(
            _ReadOp(_op_space(vp), vp.tensor.buffer, index, mask_sel))
        if vp.is_sh:
            self.bank.record_batch(offs_eff * vp.itemsize)

    def on_write_plain(self, vp, offs_sel, lane_ids) -> None:
        index = ((lane_ids[:, None], offs_sel) if lane_ids is not None
                 else offs_sel)
        self._ops.append(
            _WriteOp(_op_space(vp), vp.tensor.buffer, index))
        if vp.is_sh:
            self.bank.record_batch(offs_sel * vp.itemsize)

    def on_write_masked(self, vp, offs_sel, mask_sel, keep,
                        flat_offs, lane_mat) -> None:
        index = (lane_mat, flat_offs) if lane_mat is not None else flat_offs
        self._ops.append(_MaskedWriteOp(
            _op_space(vp), vp.tensor.buffer, index,
            None if keep.all() else keep, offs_sel.shape, mask_sel,
        ))
        if vp.is_sh:
            self.bank.record_batch(offs_sel * vp.itemsize)

    def on_write_skip(self) -> None:
        self._ops.append(_SKIP_WRITE)


def _finalize_block(leaves, machine, regfile, bid):
    """Patch direct buffer references and steal the block's storage.

    Register-file staging arrays and the block's shared buffers are at
    their final capacities once the recording replay of the block ends;
    the trace takes ownership (the capture machine is reset on every
    graph replay, so nothing else aliases them) and zero-fills them per
    replay — identical to the zero-filled lazy growth the plan engine
    would redo.
    """
    shared = {name: arr for (b, name), arr in machine._shared.items()
              if b == bid}
    for leaf in leaves:
        for op in leaf.ops:
            if op is _SKIP_WRITE:
                continue
            if op.space == "rf":
                op.buf = regfile._arrays[op.name]
            elif op.space == "sh":
                op.buf = shared[op.name]
            else:
                op.buf = machine._global[op.name]
    return list(regfile._arrays.values()) + list(shared.values())


# -- replay --------------------------------------------------------------------
class _TraceReplay:
    """The duck-typed ``run`` object leaf runners see during trace replay.

    ``read_bulk``/``write_bulk`` ignore their view/env/row arguments and
    consume the current leaf's recorded descriptors in order; row
    queries return the recorded row set; the observer feed is inert
    (traces only replay observers-off).
    """

    __slots__ = ("_leaf", "_cursor", "_aranges")

    def __init__(self):
        self._leaf = None
        self._cursor = 0
        self._aranges: Dict[int, np.ndarray] = {}

    def all_rows(self, gp):
        arr = self._aranges.get(gp.nlanes)
        if arr is None:
            arr = np.arange(gp.nlanes)
            arr.setflags(write=False)
            self._aranges[gp.nlanes] = arr
        return arr

    def active_rows(self, gp, env, preds):
        return self._leaf.rows

    def read_bulk(self, vp, env, rows, fill=0):
        op = self._leaf.ops[self._cursor]
        self._cursor += 1
        return op.gather(), None

    def write_bulk(self, vp, env, rows, values):
        op = self._leaf.ops[self._cursor]
        self._cursor += 1
        op.scatter(np.asarray(values))
        return None

    def emit(self, gp, master_rows, entries):
        pass

    def emit_entry_order(self, gp, entry):
        pass


class PlanTrace:
    """A recorded grid execution, replayable as flat descriptor math."""

    __slots__ = ("leaves", "zero_arrays", "bank_accesses",
                 "bank_transactions", "bank_worst", "nbytes")

    def __init__(self, leaves, zero_arrays, bank: BankModel):
        self.leaves = tuple(leaves)
        self.zero_arrays = tuple(zero_arrays)
        self.bank_accesses = bank.accesses
        self.bank_transactions = bank.transactions
        self.bank_worst = bank.worst_degree
        seen = set()
        total = 0
        for arr in self.zero_arrays:
            seen.add(id(arr))
            total += arr.nbytes
        for leaf in self.leaves:
            for op in leaf.ops:
                if op is _SKIP_WRITE:
                    continue
                parts = (op.index if isinstance(op.index, tuple)
                         else (op.index,))
                mask = getattr(op, "mask", None)
                keep = getattr(op, "keep", None)
                for arr in parts + (mask, keep):
                    if arr is not None and id(arr) not in seen:
                        seen.add(id(arr))
                        total += arr.nbytes
        self.nbytes = total

    def replay(self, bank_model: Optional[BankModel] = None) -> None:
        """Re-execute the recorded leaves over the current storage.

        Global arrays are read/written in place (a captured graph's
        copy-in refreshed them); trace-owned shared/register storage is
        zeroed first, exactly like a fresh launch.
        """
        for arr in self.zero_arrays:
            arr.fill(0)
        run = _TraceReplay()
        for leaf in self.leaves:
            run._leaf = leaf
            run._cursor = 0
            sp = leaf.sp
            sp.runner(run, sp, leaf.gp, _EMPTY_ENV, ())
            if run._cursor != len(leaf.ops):
                raise SimulationError(
                    f"trace replay of {sp.label} consumed {run._cursor} "
                    f"of {len(leaf.ops)} recorded operations — the plan "
                    "no longer matches its recording"
                )
        if bank_model is not None:
            bank_model.accesses += self.bank_accesses
            bank_model.transactions += self.bank_transactions
            if self.bank_worst > bank_model.worst_degree:
                bank_model.worst_degree = self.bank_worst


def record_trace(plan, machine, symbols) -> Optional[PlanTrace]:
    """Record one observers-off grid replay of ``plan`` into a trace.

    Executes the plan for real on ``machine`` (global buffer contents
    are consumed and overwritten — callers reset/copy-in before any
    replay anyway) and returns the trace, or None when the plan has
    untraceable leaves.  The machine must come fresh from launch
    binding: pre-existing block-scoped state would alias into the
    trace's stolen storage.
    """
    recorder = _TraceRecorder()
    zero_arrays: List[np.ndarray] = []
    try:
        for bid in range(plan.grid_size):
            env = dict(symbols)
            env["blockIdx.x"] = bid
            run = _Replay(plan, machine, None, None, bid)
            run._trace = recorder
            first = len(recorder.leaves)
            plan.root.execute(run, env, ())
            block_leaves = recorder.leaves[first:]
            for leaf in block_leaves:
                leaf.ops = tuple(leaf.ops)
            zero_arrays.extend(
                _finalize_block(block_leaves, machine, run.regfile, bid))
    except _Untraceable:
        return None
    return PlanTrace(recorder.leaves, zero_arrays, recorder.bank)


__all__ = ["PlanTrace", "record_trace"]
