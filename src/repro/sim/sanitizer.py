"""Shared-memory race and memory sanitizer for the functional simulator.

The interpreter executes kernels in statement-lockstep: every statement
completes for all threads before the next begins, a semantics at least
as strong as barrier-correct hardware execution.  That strength hides a
whole bug class — a decomposition with a *missing or misplaced*
``__syncthreads()`` still produces correct numerics here while racing on
a real GPU.  This module restores the weaker hardware contract as an
opt-in analysis: instead of trusting lockstep masking, it tracks every
thread's read/write sets on shared and global buffers between barrier
points and reports the hazards barriers exist to prevent.

The model is the classic barrier-epoch discipline (the same one
``compute-sanitizer --tool racecheck`` checks):

* a block-scope barrier (:class:`~repro.ir.stmt.SyncThreads`) starts a
  new *block epoch* — accesses on opposite sides of it are ordered;
* a warp-scope barrier (:class:`~repro.ir.stmt.SyncWarp`) starts a new
  *warp epoch* — it orders accesses of threads in the same warp only;
* two accesses to the same element by distinct threads, at least one a
  write, with no ordering barrier between them, are a data race
  (RAW / WAR / WAW by access kinds);
* there is no grid-wide barrier, so conflicting global-memory accesses
  from different blocks always race.

On top of race detection the sanitizer checks every access against the
declared ``Allocate`` cosize (out-of-bounds), flags reads of shared or
register elements no thread has written (uninitialized reads — the
simulator's zero-fill hides them; hardware returns garbage), and flags
barriers executed under thread-dependent predicates (divergent
barriers, which deadlock or UB on hardware).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.stmt import (
    Barrier, Block, ForLoop, If, SpecStmt, Stmt,
)
from ..tensor.memspace import GL, RF, SH, MemSpace

#: Threads per warp on every modelled architecture.
WARP_SIZE = 32

#: Access-kind pair -> hazard name (earlier access first).
_HAZARDS = {
    ("write", "read"): "raw-race",
    ("read", "write"): "war-race",
    ("write", "write"): "waw-race",
}


class SanitizerError(RuntimeError):
    """Raised by ``Simulator.run(..., sanitize=True)`` on any finding.

    Carries the full report list in ``reports``.
    """

    def __init__(self, reports: Sequence["SanitizerReport"], suppressed: int = 0):
        self.reports = list(reports)
        self.suppressed = suppressed
        lines = [r.describe() for r in self.reports[:8]]
        if len(self.reports) > 8:
            lines.append(f"... {len(self.reports) - 8} further reports")
        if suppressed:
            lines.append(f"... {suppressed} duplicate findings suppressed")
        super().__init__(
            f"sanitizer found {len(self.reports)} hazard(s):\n  "
            + "\n  ".join(lines)
        )


class SanitizerReport:
    """One hazard: what, where, and which threads collided."""

    __slots__ = (
        "kind", "buffer", "mem", "element", "threads", "block", "epoch",
        "spec", "detail",
    )

    def __init__(self, kind, buffer, mem, element, threads, block, epoch,
                 spec, detail=""):
        self.kind = kind
        self.buffer = buffer
        self.mem = mem
        self.element = element
        self.threads = tuple(threads)
        self.block = block
        self.epoch = epoch
        self.spec = spec
        self.detail = detail

    def describe(self) -> str:
        where = f"{self.mem}:{self.buffer}[{self.element}]"
        who = ",".join(f"t{t}" for t in self.threads)
        head = (
            f"{self.kind} on {where} (block {self.block}, epoch "
            f"{self.epoch}, threads {who}) in {self.spec}"
        )
        return f"{head}: {self.detail}" if self.detail else head

    def __repr__(self):
        return f"SanitizerReport<{self.describe()}>"


class Sanitizer:
    """Per-launch access tracker; attach via ``Simulator.run(sanitize=)``.

    The interpreter drives it: :meth:`declare` for every ``Allocate``
    and kernel parameter, :meth:`begin_block` per thread-block,
    :meth:`barrier` at sync statements, :meth:`enter_spec` before each
    atomic executes, and — from :class:`~repro.sim.context.ExecCtx` —
    :meth:`record` for every element-level access.
    """

    def __init__(self, warp_size: int = WARP_SIZE, max_reports: int = 64):
        self.warp_size = warp_size
        self.max_reports = max_reports
        self.reports: List[SanitizerReport] = []
        self.suppressed = 0
        self._sizes: Dict[str, int] = {}
        self._mem: Dict[str, MemSpace] = {}
        # Buffer -> element -> access records. Shared state is cleared
        # at block barriers (and block entry); global state spans the
        # whole launch because no grid-wide barrier exists.
        self._shared: Dict[str, Dict[int, List[tuple]]] = {}
        self._global: Dict[str, Dict[int, List[tuple]]] = {}
        # (scope key, element) pairs that have been written; scope key
        # is the block for SH and (block, thread) for RF.
        self._written: Dict[str, Set[tuple]] = {}
        self._seen: Set[tuple] = set()
        self._block = 0
        self._bepoch = 0
        self._wepoch = 0
        self._block_epoch_base = 0
        self._spec = "<launch>"

    # -- interpreter lifecycle hooks --------------------------------------------
    def declare(self, buffer: str, mem: MemSpace, size: int) -> None:
        """Register a buffer's memory space and legal element count."""
        self._sizes[buffer] = size
        self._mem[buffer] = mem

    def begin_block(self, block_id: int) -> None:
        """Reset per-block state; epochs keep increasing monotonically."""
        self._block = block_id
        self._shared.clear()
        self._bepoch += 1
        self._wepoch += 1
        self._block_epoch_base = self._bepoch

    def enter_spec(self, label: str) -> None:
        self._spec = label

    def barrier(self, scope: str, divergent_lanes: int = 0) -> None:
        """Advance the epoch for a ``"block"``- or ``"warp"``-scope barrier."""
        if divergent_lanes:
            self._report(
                "divergent-barrier", "<barrier>", SH, -1, (),
                f"{scope}-scope barrier executed under a thread-dependent "
                f"predicate masking {divergent_lanes} lane(s); this "
                "deadlocks or is undefined on hardware",
                dedup=("divergent-barrier", self._spec, scope),
            )
        self._wepoch += 1
        if scope == "block":
            self._bepoch += 1
            # A block barrier orders everything: conflicts can no longer
            # arise against pre-barrier shared accesses.
            self._shared.clear()

    # -- the access funnel --------------------------------------------------------
    def record(self, tensor, block: int, lane: int,
               offsets: Sequence[int], kind: str) -> None:
        """Record one lane's element accesses to a tensor view.

        ``offsets`` are the live (unmasked, post-swizzle) physical
        element offsets; guarded-out elements never reach memory and
        must not be passed here.
        """
        if not offsets:
            return
        mem = tensor.mem
        name = tensor.buffer
        size = self._sizes.get(name)
        if size is not None:
            for off in offsets:
                if off < 0 or off >= size:
                    self._report(
                        "out-of-bounds", name, mem, off, (lane,),
                        f"{kind} at element {off} of a {size}-element "
                        "allocation",
                        dedup=("out-of-bounds", name, self._spec, kind),
                    )
        if mem == GL:
            self._record_race(self._global, name, mem, block, lane,
                              offsets, kind)
            return
        scope = block if mem == SH else (block, lane)
        written = self._written.setdefault(name, set())
        if kind == "read":
            for off in offsets:
                if (scope, off) not in written:
                    self._report(
                        "uninitialized-read", name, mem, off, (lane,),
                        "element was never written in this "
                        + ("block" if mem == SH else "thread")
                        + " (simulator zero-fill hides this; hardware "
                        "returns garbage)",
                        dedup=("uninitialized-read", name, self._spec),
                    )
        else:
            written.update((scope, off) for off in offsets)
        if mem == SH:
            self._record_race(self._shared, name, mem, block, lane,
                              offsets, kind)

    def _record_race(self, table, name, mem, block, lane, offsets, kind):
        per_elem = table.setdefault(name, {})
        rec = (block, lane, lane // self.warp_size, self._bepoch,
               self._wepoch, kind, self._spec)
        for off in offsets:
            entries = per_elem.setdefault(off, [])
            for other in entries:
                hazard = self._conflict(other, rec)
                if hazard is not None:
                    self._report(
                        hazard, name, mem, off, (other[1], lane),
                        f"{other[5]} by thread {other[1]} in {other[6]} "
                        f"and {kind} by thread {lane} in {self._spec} "
                        "with no ordering barrier between them",
                        dedup=(hazard, name, other[6], self._spec),
                        block=block,
                    )
                    break
            if rec not in entries:
                entries.append(rec)

    def _conflict(self, a: tuple, b: tuple) -> Optional[str]:
        """Hazard name when records ``a`` (earlier) and ``b`` race."""
        a_block, a_thread, a_warp, a_bepoch, a_wepoch, a_kind, _ = a
        b_block, b_thread, b_warp, b_bepoch, b_wepoch, b_kind, _ = b
        if a_kind == "read" and b_kind == "read":
            return None
        if a_block == b_block and a_thread == b_thread:
            return None  # program order within one thread
        if a_block != b_block:
            return _HAZARDS[(a_kind, b_kind)]  # no grid-wide barrier
        if a_bepoch != b_bepoch:
            return None  # a block barrier separates them
        if a_warp == b_warp and a_wepoch != b_wepoch:
            return None  # a warp barrier separates same-warp threads
        return _HAZARDS[(a_kind, b_kind)]

    # -- reporting ---------------------------------------------------------------
    def _report(self, kind, buffer, mem, element, threads, detail,
                dedup: tuple, block: Optional[int] = None) -> None:
        if dedup in self._seen:
            self.suppressed += 1
            return
        self._seen.add(dedup)
        if len(self.reports) >= self.max_reports:
            self.suppressed += 1
            return
        self.reports.append(SanitizerReport(
            kind, buffer, mem, element,
            threads, self._block if block is None else block,
            self._bepoch - self._block_epoch_base, self._spec, detail,
        ))

    def clean(self) -> bool:
        return not self.reports

    def raise_if_dirty(self) -> None:
        if self.reports:
            raise SanitizerError(self.reports, self.suppressed)


# -- mutation utility for sanitizer tests --------------------------------------------
def strip_barriers(obj):
    """A copy of a kernel (or statement) with every barrier removed.

    The canonical racy mutant: lockstep simulation computes identical
    numerics for it, but the sanitizer must flag the races the barriers
    were preventing.  Accepts a :class:`~repro.specs.kernel.Kernel` or
    any :class:`~repro.ir.stmt.Stmt`.
    """
    from ..specs.kernel import Kernel

    if isinstance(obj, Kernel):
        return Kernel(obj.name, obj.grid, obj.block, obj.params,
                      _strip_block(obj.body), obj.symbols)
    stripped = _strip_stmt(obj)
    if stripped is None:
        return Block(())
    return stripped


def _strip_block(block: Block) -> Block:
    out = []
    for stmt in block:
        stripped = _strip_stmt(stmt)
        if stripped is not None:
            out.append(stripped)
    return Block(out)


def _strip_stmt(stmt: Stmt) -> Optional[Stmt]:
    if isinstance(stmt, Barrier):
        return None
    if isinstance(stmt, Block):
        return _strip_block(stmt)
    if isinstance(stmt, ForLoop):
        return ForLoop(stmt.var, stmt.stop, _strip_block(stmt.body),
                       start=stmt.start, step=stmt.step, unroll=stmt.unroll)
    if isinstance(stmt, If):
        orelse = _strip_block(stmt.orelse) if stmt.orelse is not None else None
        return If(stmt.predicates, _strip_block(stmt.then), orelse)
    if isinstance(stmt, SpecStmt) and stmt.spec.body is not None:
        return SpecStmt(stmt.spec.with_body(_strip_block(stmt.spec.body)))
    return stmt
