from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Graphene: an IR for optimized tensor computations on GPUs "
        "(ASPLOS 2023 reproduction)"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
