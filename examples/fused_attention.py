"""Fused multi-head attention: correctness + paper-scale performance.

Builds the Figure 14 FMHA kernel (two Tensor Core GEMMs with an
in-shared-memory softmax between them, fused into one kernel), verifies
it numerically on the simulator at a small size, then evaluates the
MLPerf BERT configuration (16 heads, batch 32, seq 384, head dim 64)
with the performance model against the unfused baseline and NVIDIA's
handwritten TensorRT kernel.

Run:  python examples/fused_attention.py
"""

import numpy as np

from repro import AMPERE, Simulator
from repro.eval.figures import figure_14
from repro.kernels.fmha import build_fused_fmha
from repro.library.funcs import multi_head_attention


def main():
    # -- numerics at simulation scale ----------------------------------------
    batch_heads, seq, dim = 2, 32, 16
    kernel = build_fused_fmha(batch_heads, seq, dim, kv_chunk=16)
    rng = np.random.default_rng(1)
    q = (rng.random((batch_heads * seq, dim)) - 0.5).astype(np.float16)
    k = (rng.random((batch_heads * seq, dim)) - 0.5).astype(np.float16)
    v = (rng.random((batch_heads * seq, dim)) - 0.5).astype(np.float16)
    o = np.zeros_like(q)
    Simulator(AMPERE).run(kernel, {"Q": q, "K": k, "V": v, "O": o})

    reference = multi_head_attention(q, k, v, heads=batch_heads)
    error = np.abs(o.astype(np.float32) - reference).max()
    print(f"fused FMHA max error vs numpy attention: {error:.2e}")
    assert error < 0.02
    print("OK: softmax(Q K^T / sqrt(d)) V is computed correctly "
          "by the fused decomposition.\n")

    # -- the paper's Figure 14 ------------------------------------------------
    print(figure_14().format_table())


if __name__ == "__main__":
    main()
