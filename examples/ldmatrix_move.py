"""The paper's running example (Figures 1, 5): a tensorized data
movement with ldmatrix.

Walks through the complete Graphene story:

1. logical thread groups: tiling a warp into 2x2 groups of 8 threads;
2. tiling the 16x16 shared-memory tensor into four 8x8 tiles;
3. the warp-level Move that matches the atomic ldmatrix.x4 spec;
4. the generated CUDA C++ with inline PTX (paper Figure 1c);
5. executing the instruction's data-to-thread mapping in the simulator
   and checking it against Figure 1b.

Run:  python examples/ldmatrix_move.py
"""

import numpy as np

from repro import AMPERE, CudaGenerator, Simulator, warp
from repro.layout import Layout
from repro.kernels.moves import (
    build_ldmatrix_kernel, ldmatrix_lane_values, ldmatrix_reference,
)


def main():
    # -- logical thread groups (Figure 5) ------------------------------------
    groups = warp().tile([8]).reshape((2, 2))
    print("warp tiled into 2x2 groups of 8 threads:", groups)
    print("  group coordinates:", groups.indices())
    print("  index within group:", groups.local_index())

    # Volta quad-pairs (Figure 6), just to show non-contiguous groups:
    quad_pairs = warp("qp").tile([Layout((4, 2), (1, 16))])
    print("quad-pairs:", quad_pairs)
    print()

    # -- the kernel and its CUDA (Figures 1c/1d) -----------------------------
    kernel = build_ldmatrix_kernel()
    source = CudaGenerator(AMPERE).generate(kernel)
    print(source.code)

    # -- execute the data-to-thread mapping (Figures 1a/1b) ------------------
    src = np.arange(256, dtype=np.float16).reshape(16, 16)
    out = np.zeros((32, 8), dtype=np.float16)
    Simulator(AMPERE).run(kernel, {"src": src, "out": out})

    print("thread 0 received:", out[0])
    print("thread 5 received:", out[5])
    for lane in range(32):
        expected = ldmatrix_lane_values(src, lane)
        assert set(map(float, out[lane])) == expected, lane
    assert np.array_equal(out, ldmatrix_reference(src))
    print("OK: every thread received exactly the values Figure 1b "
          "prescribes.")


if __name__ == "__main__":
    main()
