"""Quickstart: the paper's Figure 8 GEMM, start to finish.

Builds the simplest complete matrix-multiplication kernel in Graphene
IR, prints the generated CUDA C++, then verifies the kernel's numerics
by executing the *same IR* on the functional GPU simulator — with the
instruction profiler attached, so the run also reports the memory
transactions Nsight Compute would show.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AMPERE, CudaGenerator, Simulator
from repro.kernels import NaiveGemmConfig, build


def main():
    # 1. Build the Figure 8 kernel at paper scale and print its CUDA.
    kernel = build(NaiveGemmConfig(1024, 1024, 1024, grid=(8, 8),
                                   threads=(16, 16)))
    source = CudaGenerator(AMPERE).generate(kernel)
    print("=" * 72)
    print(f"Generated CUDA for {source.name} "
          f"<<<{source.grid_dim}, {source.block_dim}>>>")
    print("=" * 72)
    print(source.code)

    # 2. Execute the same IR functionally at a simulation-friendly size.
    m = n = k = 32
    small = build(NaiveGemmConfig(m, n, k, grid=(2, 2), threads=(4, 4)))
    rng = np.random.default_rng(0)
    a = (rng.random((m, k)) * 0.1).astype(np.float16)
    b = (rng.random((k, n)) * 0.1).astype(np.float16)
    c = np.zeros((m, n), dtype=np.float16)
    result = Simulator(AMPERE).run(small, {"A": a, "B": b, "C": c},
                                   profile=True)

    reference = a.astype(np.float32) @ b.astype(np.float32)
    error = np.abs(c.astype(np.float32) - reference).max()
    print(f"simulated {m}x{n}x{k} GEMM max error vs numpy: {error:.2e}")
    assert error < 0.05
    print("OK: the decomposition computes a correct matrix multiply.")

    # 3. The profiler rode along: per-kernel counters, Nsight-style.
    profile = result.profile
    print()
    print(profile.summary())
    print(f"measured global traffic: {profile.global_load_bytes}B loaded, "
          f"{profile.global_store_bytes}B stored "
          f"({profile.global_transactions} 32B-sector transactions)")


if __name__ == "__main__":
    main()
