"""A tour of Graphene's shapes, layouts and tiles (paper Figures 3-4).

Shows hierarchical dimensions (multiple strides per dimension),
contiguous and non-contiguous tiling, swizzled shared-memory layouts and
their bank behaviour — the expressiveness that flat shape/stride lists
cannot capture.

Run:  python examples/layout_zoo.py
"""

from repro import FP16, SH, Layout, Swizzle, Tensor, row_major, tensor
from repro.layout import logical_divide
from repro.sim.banks import column_access_degree


def show(title, layout):
    offsets = [layout(0, j) for j in range(8)] if layout.rank == 2 else None
    print(f"{title:55} {layout!r}")
    if offsets is not None:
        print(f"{'':55}   row 0 offsets: {offsets}")


def main():
    print("-- memory layouts (Figure 3) --")
    show("a) column-major", Layout((4, 8), (1, 4)))
    show("b) row-major", Layout((4, 8), (8, 1)))
    show("c) hierarchical dim: pairs of columns, rows-first",
         Layout((4, (2, 4)), (2, (1, 8))))
    show("d) hierarchical dims twice",
         Layout(((2, 2), (2, 4)), ((1, 8), (2, 16))))
    print()

    print("-- tiling (Figure 4) --")
    a = tensor("A", (4, 8), FP16)
    print("A:", a)
    print("b) contiguous 2x4 tiles:      ", a.tile((2, 4)))
    print("c) interleaved rows [2:2]:    ", a.tile((Layout(2, 2), 4)))
    print("d) non-contiguous both dims:  ",
          a.tile((Layout(2, 2), Layout((2, 2), (1, 4)))))
    print()

    print("-- the algebra underneath --")
    divided = logical_divide(Layout(32, 1), Layout((4, 2), (1, 16)))
    print("warp divided into quad-pairs:", divided)
    print("quad-pair 0 thread ids:",
          [divided.mode(0)(i) for i in range(8)])
    print()

    print("-- swizzles and bank conflicts (Section 3.2) --")
    naive = Tensor("smem", row_major(32, 8), FP16, SH)
    # XOR the row-group bits into the bank bits: every one of the
    # 32 rows lands in its own bank.
    swizzled = naive.with_swizzle(Swizzle(2, 1, 5))
    print(f"column read, row-major layout:   "
          f"{column_access_degree(naive)}-way conflict")
    print(f"column read, swizzled layout:    "
          f"{column_access_degree(swizzled)}-way conflict")


if __name__ == "__main__":
    main()
