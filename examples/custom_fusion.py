"""Authoring a fusion no library provides: GEMM + tanh epilogue.

The paper notes that cuBLASLt offers no tanh epilogue (Section 6, LSTM
experiment) — with Graphene, fusions are not limited to a library's
menu.  This example authors ``Y = tanh(X @ W + bias)`` through the
public builder API, verifies it in the simulator, and prints the CUDA.

Run:  python examples/custom_fusion.py
"""

import numpy as np

from repro import AMPERE, CudaGenerator, Simulator
from repro.kernels.epilogue import build_gemm_epilogue


def main():
    m, n, k = 32, 16, 16
    kernel = build_gemm_epilogue(
        m, n, k, arch="ampere", bias=True, activation="tanh",
        block_tile=(32, 16, 16), warp_grid=(1, 1),
        name="gemm_bias_tanh",
    )

    rng = np.random.default_rng(5)
    x = (rng.random((m, k)) - 0.5).astype(np.float16)
    w = (rng.random((k, n)) - 0.5).astype(np.float16)
    bias = (rng.random(n) - 0.5).astype(np.float16)
    y = np.zeros((m, n), dtype=np.float16)
    Simulator(AMPERE).run(kernel, {"A": x, "B": w, "C": y, "bias": bias})

    reference = np.tanh(
        x.astype(np.float32) @ w.astype(np.float32)
        + bias.astype(np.float32)
    )
    error = np.abs(y.astype(np.float32) - reference).max()
    print(f"tanh-epilogue GEMM max error: {error:.2e}")
    assert error < 0.01
    print("OK: a fusion cuBLASLt does not offer, in ~10 lines.\n")

    source = CudaGenerator(AMPERE).generate(kernel)
    epilogue_lines = [
        line for line in source.code.splitlines() if "tanhf" in line
    ]
    print("generated epilogue lines (excerpt):")
    for line in epilogue_lines[:4]:
        print("   ", line.strip())


if __name__ == "__main__":
    main()
